// Tests for the experiment aggregation helper (analysis/experiment.hpp).
#include "analysis/experiment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace gossip::analysis {
namespace {

core::BroadcastReport make_report(std::uint64_t n, std::uint64_t informed,
                                  std::uint64_t rounds, std::uint64_t msgs,
                                  std::uint64_t bits, std::uint32_t delta) {
  core::BroadcastReport r;
  r.n = n;
  r.alive = n;
  r.informed = informed;
  r.all_informed = informed == n;
  r.rounds = rounds;
  r.stats.total.payload_messages = msgs;
  r.stats.total.connections = msgs;
  r.stats.total.bits = bits;
  r.stats.total.max_involvement = delta;
  return r;
}

TEST(ReportAggregate, CollectsMeans) {
  ReportAggregate agg;
  agg.add(make_report(100, 100, 10, 200, 1000, 5));
  agg.add(make_report(100, 100, 20, 400, 3000, 7));
  EXPECT_EQ(agg.runs, 2u);
  EXPECT_EQ(agg.failures, 0u);
  EXPECT_DOUBLE_EQ(agg.rounds.mean(), 15.0);
  EXPECT_DOUBLE_EQ(agg.payload_per_node.mean(), 3.0);
  EXPECT_DOUBLE_EQ(agg.bits_per_node.mean(), 20.0);
  EXPECT_DOUBLE_EQ(agg.max_delta.max(), 7.0);
  EXPECT_DOUBLE_EQ(agg.rounds.min(), 10.0);
  EXPECT_DOUBLE_EQ(agg.rounds.max(), 20.0);
}

TEST(ReportAggregate, CountsFailures) {
  ReportAggregate agg;
  agg.add(make_report(100, 100, 1, 1, 1, 1));
  agg.add(make_report(100, 97, 1, 1, 1, 1));
  EXPECT_EQ(agg.failures, 1u);
  EXPECT_DOUBLE_EQ(agg.uninformed.max(), 3.0);
  EXPECT_NEAR(agg.informed_fraction.mean(), 0.985, 1e-9);
}

TEST(ReportAggregate, EmptyIsSafe) {
  ReportAggregate agg;
  EXPECT_EQ(agg.runs, 0u);
  EXPECT_DOUBLE_EQ(agg.rounds.mean(), 0.0);
  EXPECT_DOUBLE_EQ(agg.rounds.p50(), 0.0);
}

// A varied report sequence for the merge/quantile tests: deterministic but
// irregular values so floating-point order sensitivity would be caught.
std::vector<core::BroadcastReport> varied_reports(std::size_t count) {
  std::vector<core::BroadcastReport> reports;
  for (std::size_t i = 0; i < count; ++i) {
    const auto k = static_cast<std::uint64_t>(i);
    reports.push_back(make_report(1000, (i % 7 == 3) ? 997 - k : 1000,
                                  3 + (k * 37) % 11, 100 + (k * k * 13) % 997,
                                  10000 + (k * 7919) % 4801,
                                  static_cast<std::uint32_t>(1 + (k * 31) % 17)));
  }
  return reports;
}

void expect_stat_identical(const MetricStat& a, const MetricStat& b,
                           const char* name) {
  EXPECT_EQ(a.count(), b.count()) << name;
  EXPECT_EQ(a.mean(), b.mean()) << name;
  EXPECT_EQ(a.variance(), b.variance()) << name;
  EXPECT_EQ(a.min(), b.min()) << name;
  EXPECT_EQ(a.max(), b.max()) << name;
  EXPECT_EQ(a.sum(), b.sum()) << name;
  EXPECT_EQ(a.p50(), b.p50()) << name;
  EXPECT_EQ(a.p90(), b.p90()) << name;
  EXPECT_EQ(a.p99(), b.p99()) << name;
}

void expect_identical(const ReportAggregate& a, const ReportAggregate& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.failures, b.failures);
  expect_stat_identical(a.rounds, b.rounds, "rounds");
  expect_stat_identical(a.payload_per_node, b.payload_per_node, "payload");
  expect_stat_identical(a.connections_per_node, b.connections_per_node, "conns");
  expect_stat_identical(a.bits_per_node, b.bits_per_node, "bits_per_node");
  expect_stat_identical(a.total_bits, b.total_bits, "total_bits");
  expect_stat_identical(a.max_delta, b.max_delta, "max_delta");
  expect_stat_identical(a.informed_fraction, b.informed_fraction, "informed");
  expect_stat_identical(a.uninformed, b.uninformed, "uninformed");
}

TEST(ReportAggregate, MergeInAnyGroupingIsBitIdenticalToSerial) {
  const auto reports = varied_reports(24);
  ReportAggregate serial;
  for (const auto& r : reports) serial.add(r);

  // Split the same sequence into contiguous partial aggregates at several
  // granularities, merge in sequence order, and demand EXACT equality -
  // the TrialRunner's every-worker-count contract rests on this.
  for (const std::size_t group : {1u, 2u, 5u, 7u, 24u}) {
    ReportAggregate merged;
    std::size_t i = 0;
    while (i < reports.size()) {
      ReportAggregate partial;
      for (std::size_t j = i; j < std::min(i + group, reports.size()); ++j) {
        partial.add(reports[j]);
      }
      merged.merge(partial);
      i += group;
    }
    expect_identical(serial, merged);
  }
}

TEST(ReportAggregate, SelfMergeDoublesTheSamples) {
  const auto reports = varied_reports(6);
  ReportAggregate agg;
  for (const auto& r : reports) agg.add(r);
  ReportAggregate doubled;
  for (int rep = 0; rep < 2; ++rep) {
    for (const auto& r : reports) doubled.add(r);
  }
  agg.merge(agg);  // must not invalidate iterators mid-replay
  expect_identical(doubled, agg);
}

TEST(ReportAggregate, MergeIntoEmptyAndFromEmpty) {
  const auto reports = varied_reports(5);
  ReportAggregate filled;
  for (const auto& r : reports) filled.add(r);
  ReportAggregate from_empty;
  from_empty.merge(filled);
  expect_identical(filled, from_empty);
  ReportAggregate empty;
  filled.merge(empty);  // no-op
  EXPECT_EQ(filled.runs, 5u);
  expect_identical(filled, from_empty);
}

TEST(MetricStat, QuantilesPinnedOnKnownDistribution) {
  // rounds = 1..100: linear interpolation at pos q*(count-1) gives exact
  // closed-form values.
  ReportAggregate agg;
  for (std::uint64_t r = 1; r <= 100; ++r) {
    agg.add(make_report(100, 100, r, 1, 1, 1));
  }
  EXPECT_DOUBLE_EQ(agg.rounds.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(agg.rounds.p50(), 50.5);
  EXPECT_DOUBLE_EQ(agg.rounds.p90(), 90.1);
  EXPECT_DOUBLE_EQ(agg.rounds.p99(), 99.01);
  EXPECT_DOUBLE_EQ(agg.rounds.quantile(1.0), 100.0);
  // Insertion order must not matter (quantile sorts a copy).
  ReportAggregate reversed;
  for (std::uint64_t r = 100; r >= 1; --r) {
    reversed.add(make_report(100, 100, r, 1, 1, 1));
  }
  EXPECT_DOUBLE_EQ(reversed.rounds.p50(), 50.5);
  EXPECT_DOUBLE_EQ(reversed.rounds.p90(), 90.1);
  EXPECT_DOUBLE_EQ(reversed.rounds.p99(), 99.01);
}

TEST(MetricStat, SingleSampleQuantiles) {
  MetricStat m;
  m.add(42.0);
  EXPECT_DOUBLE_EQ(m.p50(), 42.0);
  EXPECT_DOUBLE_EQ(m.p99(), 42.0);
}

TEST(MetricStat, BatchQuantilesMatchPerCallQuantiles) {
  MetricStat m;
  for (int i = 100; i >= 1; --i) m.add(static_cast<double>(i));
  const double qs[] = {0.0, 0.5, 0.9, 0.99, 1.0};
  const auto batch = m.quantiles(qs);
  ASSERT_EQ(batch.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(batch[i], m.quantile(qs[i])) << "q=" << qs[i];
  }
  EXPECT_EQ(MetricStat().quantiles(qs), std::vector<double>(5, 0.0));
}

}  // namespace
}  // namespace gossip::analysis
