// Tests for the experiment aggregation helper (analysis/experiment.hpp).
#include "analysis/experiment.hpp"

#include <gtest/gtest.h>

namespace gossip::analysis {
namespace {

core::BroadcastReport make_report(std::uint64_t n, std::uint64_t informed,
                                  std::uint64_t rounds, std::uint64_t msgs,
                                  std::uint64_t bits, std::uint32_t delta) {
  core::BroadcastReport r;
  r.n = n;
  r.alive = n;
  r.informed = informed;
  r.all_informed = informed == n;
  r.rounds = rounds;
  r.stats.total.payload_messages = msgs;
  r.stats.total.connections = msgs;
  r.stats.total.bits = bits;
  r.stats.total.max_involvement = delta;
  return r;
}

TEST(ReportAggregate, CollectsMeans) {
  ReportAggregate agg;
  agg.add(make_report(100, 100, 10, 200, 1000, 5));
  agg.add(make_report(100, 100, 20, 400, 3000, 7));
  EXPECT_EQ(agg.runs, 2u);
  EXPECT_EQ(agg.failures, 0u);
  EXPECT_DOUBLE_EQ(agg.rounds.mean(), 15.0);
  EXPECT_DOUBLE_EQ(agg.payload_per_node.mean(), 3.0);
  EXPECT_DOUBLE_EQ(agg.bits_per_node.mean(), 20.0);
  EXPECT_DOUBLE_EQ(agg.max_delta.max(), 7.0);
  EXPECT_DOUBLE_EQ(agg.rounds.min(), 10.0);
  EXPECT_DOUBLE_EQ(agg.rounds.max(), 20.0);
}

TEST(ReportAggregate, CountsFailures) {
  ReportAggregate agg;
  agg.add(make_report(100, 100, 1, 1, 1, 1));
  agg.add(make_report(100, 97, 1, 1, 1, 1));
  EXPECT_EQ(agg.failures, 1u);
  EXPECT_DOUBLE_EQ(agg.uninformed.max(), 3.0);
  EXPECT_NEAR(agg.informed_fraction.mean(), 0.985, 1e-9);
}

TEST(ReportAggregate, EmptyIsSafe) {
  ReportAggregate agg;
  EXPECT_EQ(agg.runs, 0u);
  EXPECT_DOUBLE_EQ(agg.rounds.mean(), 0.0);
}

}  // namespace
}  // namespace gossip::analysis
