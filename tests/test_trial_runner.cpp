// TrialRunner determinism contract (runner/trial_runner.hpp): for a fixed
// ScenarioSpec the aggregated report - every moment and every quantile - is
// bit-identical across worker counts, and per-trial seeds depend only on the
// trial index. These are exact (EXPECT_EQ on doubles) comparisons: the
// runner merges in trial order, so not a single bit may move.
#include "runner/trial_runner.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "runner/registry.hpp"

namespace gossip::runner {
namespace {

ScenarioSpec fixed_spec() {
  ScenarioSpec spec;
  spec.name = "fixture";
  spec.algorithm = "push_pull";
  spec.n = 256;
  spec.trials = 8;
  spec.seed = 7;
  spec.rumor_bits = 128;
  spec.fault_fraction = 0.05;
  spec.fault_strategy = sim::FaultStrategy::kRandomSubset;
  return spec;
}

void expect_metric_identical(const analysis::MetricStat& a,
                             const analysis::MetricStat& b, const char* name) {
  EXPECT_EQ(a.count(), b.count()) << name;
  EXPECT_EQ(a.mean(), b.mean()) << name;
  EXPECT_EQ(a.stddev(), b.stddev()) << name;
  EXPECT_EQ(a.min(), b.min()) << name;
  EXPECT_EQ(a.max(), b.max()) << name;
  EXPECT_EQ(a.sum(), b.sum()) << name;
  EXPECT_EQ(a.p50(), b.p50()) << name;
  EXPECT_EQ(a.p90(), b.p90()) << name;
  EXPECT_EQ(a.p99(), b.p99()) << name;
  EXPECT_EQ(a.samples(), b.samples()) << name;
}

void expect_aggregate_identical(const analysis::ReportAggregate& a,
                                const analysis::ReportAggregate& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.failures, b.failures);
  expect_metric_identical(a.rounds, b.rounds, "rounds");
  expect_metric_identical(a.payload_per_node, b.payload_per_node, "payload");
  expect_metric_identical(a.connections_per_node, b.connections_per_node,
                          "connections");
  expect_metric_identical(a.bits_per_node, b.bits_per_node, "bits_per_node");
  expect_metric_identical(a.total_bits, b.total_bits, "total_bits");
  expect_metric_identical(a.max_delta, b.max_delta, "max_delta");
  expect_metric_identical(a.informed_fraction, b.informed_fraction,
                          "informed_fraction");
  expect_metric_identical(a.uninformed, b.uninformed, "uninformed");
}

void expect_reports_identical(const std::vector<core::BroadcastReport>& a,
                              const std::vector<core::BroadcastReport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t].rounds, b[t].rounds) << "trial " << t;
    EXPECT_EQ(a[t].informed, b[t].informed) << "trial " << t;
    EXPECT_EQ(a[t].alive, b[t].alive) << "trial " << t;
    EXPECT_EQ(a[t].stats.total.bits, b[t].stats.total.bits) << "trial " << t;
    EXPECT_EQ(a[t].stats.total.connections, b[t].stats.total.connections)
        << "trial " << t;
    EXPECT_EQ(a[t].stats.total.max_involvement, b[t].stats.total.max_involvement)
        << "trial " << t;
  }
}

TEST(TrialRunner, AggregateBitIdenticalAcrossWorkerCounts) {
  const ScenarioSpec spec = fixed_spec();
  const ScenarioResult base = TrialRunner(1).run(spec);
  EXPECT_EQ(base.aggregate.runs, spec.trials);
  for (const unsigned workers : {2u, 8u}) {
    const ScenarioResult parallel = TrialRunner(workers).run(spec);
    expect_aggregate_identical(base.aggregate, parallel.aggregate);
    expect_reports_identical(base.reports, parallel.reports);
  }
}

TEST(TrialRunner, PerTrialSeedsIndependentOfWorkerCount) {
  const ScenarioSpec spec = fixed_spec();
  // run_trial(spec, t) is the ground truth for trial t: the pooled runs must
  // hand every trial exactly this report, regardless of which worker ran it.
  std::vector<core::BroadcastReport> expected;
  for (unsigned t = 0; t < spec.trials; ++t) {
    expected.push_back(TrialRunner::run_trial(spec, t));
  }
  for (const unsigned workers : {1u, 2u, 8u}) {
    const ScenarioResult result = TrialRunner(workers).run(spec);
    expect_reports_identical(expected, result.reports);
  }
}

TEST(TrialRunner, TrialsDrawDistinctSeeds) {
  ScenarioSpec spec = fixed_spec();
  spec.fault_fraction = 0.0;
  spec.trials = 4;
  const ScenarioResult result = TrialRunner(1).run(spec);
  // Forked per-trial streams: at least one pair of trials must differ in
  // total traffic (identical trajectories would mean seed aliasing).
  const auto& bits = result.aggregate.total_bits.samples();
  bool any_differ = false;
  for (double x : bits) any_differ |= (x != bits.front());
  EXPECT_TRUE(any_differ);
}

TEST(TrialRunner, LegacyFaultSpecReproducesTheOneShotFailSetRecipe) {
  // Back-compat contract: fault_fraction/fault_strategy map to StaticCrash
  // and must replay the pre-FaultModel trial byte-for-byte. This hand-rolls
  // the old recipe (choose_failures + Network::fail before the source draw,
  // no model installed on the engine) and pins run_trial against it.
  const ScenarioSpec spec = fixed_spec();
  const AlgorithmEntry& algo = *find_algorithm(spec.algorithm);
  for (unsigned trial = 0; trial < 3; ++trial) {
    Rng trial_rng = Rng(spec.seed).fork(trial);
    const std::uint64_t network_seed = trial_rng.next_u64();
    const std::uint64_t adversary_seed = trial_rng.next_u64();
    sim::NetworkOptions net_opts;
    net_opts.n = spec.n;
    net_opts.seed = network_seed;
    net_opts.rumor_bits = spec.rumor_bits;
    sim::Network net(net_opts);
    Rng adversary(adversary_seed);
    for (std::uint32_t v : sim::choose_failures(net, spec.fault_count(),
                                                spec.fault_strategy, adversary)) {
      net.fail(v);
    }
    auto source = static_cast<std::uint32_t>(trial_rng.uniform_below(spec.n));
    while (!net.alive(source)) source = (source + 1) % spec.n;
    const core::BroadcastReport legacy = algo.run(net, source, spec, nullptr, nullptr);

    const core::BroadcastReport current = TrialRunner::run_trial(spec, trial);
    EXPECT_EQ(current.rounds, legacy.rounds) << "trial " << trial;
    EXPECT_EQ(current.informed, legacy.informed) << "trial " << trial;
    EXPECT_EQ(current.alive, legacy.alive) << "trial " << trial;
    EXPECT_EQ(current.stats.total.bits, legacy.stats.total.bits) << "trial " << trial;
    EXPECT_EQ(current.stats.total.connections, legacy.stats.total.connections)
        << "trial " << trial;
    EXPECT_EQ(current.stats.total.max_involvement, legacy.stats.total.max_involvement)
        << "trial " << trial;
  }
}

TEST(TrialRunner, FaultModelAppliedPerTrial) {
  ScenarioSpec spec = fixed_spec();
  spec.fault_fraction = 0.1;
  const ScenarioResult result = TrialRunner(2).run(spec);
  for (const core::BroadcastReport& r : result.reports) {
    EXPECT_EQ(r.n, spec.n);
    EXPECT_EQ(r.alive, spec.n - spec.fault_count());
  }
}

TEST(TrialRunner, ShardedEnginesInsideParallelTrials) {
  // engine_threads nests a per-trial engine pool inside the cross-trial
  // pool; the determinism contract must survive the nesting.
  ScenarioSpec spec = fixed_spec();
  spec.algorithm = "push";
  spec.engine_threads = 2;
  spec.trials = 4;
  const ScenarioResult serial = TrialRunner(1).run(spec);
  const ScenarioResult parallel = TrialRunner(4).run(spec);
  expect_aggregate_identical(serial.aggregate, parallel.aggregate);
  expect_reports_identical(serial.reports, parallel.reports);
}

TEST(TrialRunner, EveryRegistryAlgorithmRuns) {
  for (const AlgorithmEntry& entry : algorithms()) {
    ScenarioSpec spec;
    spec.algorithm = entry.id;
    spec.n = 128;
    spec.trials = 2;
    spec.seed = 3;
    spec.delta = 64;  // cluster3_push_pull needs delta <= n
    const ScenarioResult result = TrialRunner(2).run(spec);
    EXPECT_EQ(result.aggregate.runs, 2u) << entry.id;
    EXPECT_GT(result.aggregate.informed_fraction.mean(), 0.9) << entry.id;
    EXPECT_GT(result.aggregate.rounds.mean(), 0.0) << entry.id;
  }
}

TEST(TrialRunner, UnknownAlgorithmThrows) {
  ScenarioSpec spec = fixed_spec();
  spec.algorithm = "does_not_exist";
  EXPECT_THROW((void)TrialRunner(1).run(spec), ScenarioError);
}

TEST(TrialRunner, InvalidSpecThrows) {
  ScenarioSpec spec = fixed_spec();
  spec.fault_fraction = 0.999;  // rounds to n failures: nobody left alive
  EXPECT_THROW((void)TrialRunner(1).run(spec), ScenarioError);
}

TEST(TrialRunner, WorkersReflectConstructionAndNormaliseZero) {
  EXPECT_EQ(TrialRunner(3).workers(), 3u);
  EXPECT_EQ(TrialRunner(1).workers(), 1u);
  EXPECT_EQ(TrialRunner(0).workers(), 1u);
}

TEST(TrialRunner, RunScenarioMatchesExplicitRunner) {
  // Note the determinism contract makes the aggregate identical for every
  // worker count by design, so this pins the convenience wrapper's output,
  // not that it actually used spec.threads workers (workers() above covers
  // the pool size; the wrapper is one line - see run_scenario()).
  ScenarioSpec spec = fixed_spec();
  spec.threads = 3;
  const ScenarioResult result = run_scenario(spec);
  expect_aggregate_identical(TrialRunner(1).run(spec).aggregate, result.aggregate);
}

}  // namespace
}  // namespace gossip::runner
