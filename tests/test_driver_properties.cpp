// Property-based tests for the cluster primitives: random staged
// clusterings, randomized primitive sequences, and the invariants that must
// survive them (paper Section 3.1's partition structure).
//
// Invariants checked after every step:
//   P1  partition: every alive node is unclustered or attributes to exactly
//       one cluster (trivially true by construction of follow; checked via
//       stats consistency: clustered + unclustered == alive);
//   P2  leader self-reference: a leader's follow is its own ID;
//   P3  size conservation: primitives that never dissolve keep the
//       clustered-node count constant (merges move nodes, never drop them);
//   P4  flatness restoration: after merges + enough settle rounds the
//       clustering is flat again;
//   P5  activation coherence: after ClusterActivate, all members of a flat
//       cluster agree with their leader.
#include <gtest/gtest.h>

#include "cluster/driver.hpp"
#include "common/rng.hpp"

namespace gossip::cluster {
namespace {

struct PropertyFixture {
  PropertyFixture(std::uint32_t n, std::uint64_t seed)
      : net(make_opts(n, seed)), engine(net), driver(engine), rng(seed * 2654435761ULL) {}

  static sim::NetworkOptions make_opts(std::uint32_t n, std::uint64_t seed) {
    sim::NetworkOptions o;
    o.n = n;
    o.seed = seed;
    return o;
  }

  /// Random flat clustering: each node joins one of k random leaders with
  /// probability p_clustered.
  void stage_random_clustering(std::uint32_t k, double p_clustered) {
    auto& cl = driver.clustering();
    cl.reset();
    std::vector<std::uint32_t> leaders;
    for (std::uint32_t i = 0; i < k; ++i) {
      leaders.push_back(static_cast<std::uint32_t>(rng.uniform_below(net.n())));
      cl.make_leader(leaders.back());
    }
    for (std::uint32_t v = 0; v < net.n(); ++v) {
      if (cl.is_leader(v) || !rng.bernoulli(p_clustered)) continue;
      cl.set_follow(v, net.id_of(leaders[rng.uniform_below(leaders.size())]));
    }
  }

  void check_partition(const char* where) const {
    const auto stats = driver.clustering().stats();
    EXPECT_EQ(stats.clustered_nodes + stats.unclustered_nodes, net.alive_count())
        << where;
  }

  void check_leader_self_reference(const char* where) const {
    const auto& cl = driver.clustering();
    for (std::uint32_t v = 0; v < net.n(); ++v) {
      if (cl.is_leader(v)) EXPECT_EQ(cl.follow(v), net.id_of(v)) << where << " v=" << v;
    }
  }

  sim::Network net;
  sim::Engine engine;
  Driver driver;
  Rng rng;
};

struct Params {
  std::uint32_t n;
  std::uint64_t seed;
};

class DriverPropertySweep : public ::testing::TestWithParam<Params> {};

TEST_P(DriverPropertySweep, ResizePreservesPartitionAndMembership) {
  PropertyFixture fx(GetParam().n, GetParam().seed);
  fx.stage_random_clustering(8, 0.8);
  const auto before = fx.driver.clustering().stats();
  for (const std::uint64_t target : {4ull, 16ull, 64ull, 7ull, 3ull}) {
    fx.driver.resize(target, false);
    const auto after = fx.driver.clustering().stats();
    EXPECT_EQ(after.clustered_nodes, before.clustered_nodes) << "target=" << target;
    EXPECT_TRUE(fx.driver.clustering().is_flat()) << "target=" << target;
    EXPECT_LT(after.max_size, 2 * target) << "target=" << target;
    fx.check_partition("resize");
    fx.check_leader_self_reference("resize");
  }
}

TEST_P(DriverPropertySweep, RandomPrimitiveSequenceKeepsInvariants) {
  PropertyFixture fx(GetParam().n, GetParam().seed);
  fx.stage_random_clustering(12, 0.7);
  for (int step = 0; step < 30; ++step) {
    switch (fx.rng.uniform_below(6)) {
      case 0:
        fx.driver.activate(fx.rng.uniform01());
        break;
      case 1:
        fx.driver.compute_sizes(false);
        break;
      case 2:
        fx.driver.resize(2 + fx.rng.uniform_below(32), false);
        break;
      case 3:
        fx.driver.push_cluster_id(false, fx.rng.bernoulli(0.5), RelayPolicy::kSmallest);
        break;
      case 4:
        fx.driver.relay_candidates(RelayPolicy::kSmallest, false);
        fx.driver.merge_from_inbox(RelayPolicy::kSmallest, false);
        fx.driver.settle(2);
        break;
      case 5:
        fx.driver.unclustered_pull_round();
        break;
    }
    fx.check_partition("sequence");
    fx.check_leader_self_reference("sequence");
  }
  // After settling, the clustering must be flat again (P4).
  fx.driver.settle(4);
  EXPECT_TRUE(fx.driver.clustering().is_flat());
}

TEST_P(DriverPropertySweep, MergeNeverLosesClusteredNodes) {
  PropertyFixture fx(GetParam().n, GetParam().seed);
  fx.stage_random_clustering(16, 0.9);
  const auto before = fx.driver.clustering().stats().clustered_nodes;
  for (int rep = 0; rep < 4; ++rep) {
    fx.driver.push_cluster_id(false, false, RelayPolicy::kSmallest);
    fx.driver.relay_candidates(RelayPolicy::kSmallest, false);
    fx.driver.merge_from_inbox(RelayPolicy::kSmallest, false);
  }
  fx.driver.settle(4);
  const auto after = fx.driver.clustering().stats();
  EXPECT_EQ(after.clustered_nodes, before);
  EXPECT_TRUE(fx.driver.clustering().is_flat());
  // Merging to smallest can only reduce the number of clusters.
  EXPECT_LE(after.clusters, 16u);
}

TEST_P(DriverPropertySweep, ActivationCoherence) {
  PropertyFixture fx(GetParam().n, GetParam().seed);
  fx.stage_random_clustering(10, 0.8);
  for (const double p : {0.0, 0.3, 0.7, 1.0}) {
    fx.driver.activate(p);
    const auto& cl = fx.driver.clustering();
    for (std::uint32_t v = 0; v < fx.net.n(); ++v) {
      if (!cl.is_follower(v)) continue;
      const auto leader = fx.net.find(cl.follow(v));
      ASSERT_TRUE(leader.has_value());
      EXPECT_EQ(cl.active(v), cl.active(*leader)) << "p=" << p << " v=" << v;
    }
  }
}

TEST_P(DriverPropertySweep, DissolveExactlyRemovesSmallClusters) {
  PropertyFixture fx(GetParam().n, GetParam().seed);
  fx.stage_random_clustering(20, 0.6);
  const auto sizes_before = fx.driver.clustering().cluster_sizes();
  const std::uint64_t cutoff = 1 + fx.rng.uniform_below(10);
  fx.driver.dissolve_below(cutoff);
  const auto sizes_after = fx.driver.clustering().cluster_sizes();
  std::uint64_t expected_survivors = 0;
  for (const auto& [leader, size] : sizes_before) {
    if (size >= cutoff) ++expected_survivors;
  }
  EXPECT_EQ(sizes_after.size(), expected_survivors) << "cutoff=" << cutoff;
  for (const auto& [leader, size] : sizes_after) EXPECT_GE(size, cutoff);
  fx.check_partition("dissolve");
}

INSTANTIATE_TEST_SUITE_P(Sweep, DriverPropertySweep,
                         ::testing::Values(Params{128, 1}, Params{128, 2}, Params{512, 1},
                                           Params{512, 3}, Params{2048, 1},
                                           Params{2048, 5}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "_s" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace gossip::cluster
