// Churn determinism under parallelism (PR 6): a scenario with Poisson
// joins/crashes, a loss burst AND byzantine responders must produce
// bit-identical trajectories across TrialRunner worker counts {1, 2, 8},
// engine thread counts {1, 2, 8} and delivery bucket counts {1, 4, 64}.
// Join order is part of the round timeline (sync points at round begin),
// arrival counts and crash victims come from (network seed, round) counter
// streams, and response corruption is pure per (seed, round, responder) -
// so none of it may depend on who executes what (mirrors
// test_fault_model_determinism.cpp; CI additionally diffs gossip_run JSON
// on scenarios/churn.scn).
#include <gtest/gtest.h>

#include <vector>

#include "runner/trial_runner.hpp"

namespace gossip::runner {
namespace {

ScenarioSpec churn_spec() {
  ScenarioSpec spec;
  spec.name = "churn-determinism";
  spec.algorithm = "push_pull";
  spec.n = 256;
  spec.trials = 6;
  spec.seed = 11;
  spec.rumor_bits = 128;
  spec.join_rate = 0.8;               // fresh arrivals most rounds
  spec.crash_rate = 0.4;              // mid-run departures
  spec.loss_schedule = "burst:0.2:2:6";  // on a flaky fabric
  spec.byzantine_fraction = 0.05;     // with poisoned pull responses
  return spec;
}

void expect_reports_identical(const std::vector<core::BroadcastReport>& a,
                              const std::vector<core::BroadcastReport>& b,
                              const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t].n, b[t].n) << what << " trial " << t;  // joins included
    EXPECT_EQ(a[t].rounds, b[t].rounds) << what << " trial " << t;
    EXPECT_EQ(a[t].informed, b[t].informed) << what << " trial " << t;
    EXPECT_EQ(a[t].alive, b[t].alive) << what << " trial " << t;
    EXPECT_EQ(a[t].stats.total.bits, b[t].stats.total.bits) << what << " trial " << t;
    EXPECT_EQ(a[t].stats.total.payload_messages, b[t].stats.total.payload_messages)
        << what << " trial " << t;
    EXPECT_EQ(a[t].stats.total.connections, b[t].stats.total.connections)
        << what << " trial " << t;
    EXPECT_EQ(a[t].stats.total.max_involvement, b[t].stats.total.max_involvement)
        << what << " trial " << t;
  }
}

void expect_aggregates_identical(const analysis::ReportAggregate& a,
                                 const analysis::ReportAggregate& b,
                                 const char* what) {
  EXPECT_EQ(a.runs, b.runs) << what;
  EXPECT_EQ(a.failures, b.failures) << what;
  EXPECT_EQ(a.rounds.samples(), b.rounds.samples()) << what;
  EXPECT_EQ(a.uninformed.samples(), b.uninformed.samples()) << what;
  EXPECT_EQ(a.total_bits.samples(), b.total_bits.samples()) << what;
  EXPECT_EQ(a.informed_fraction.samples(), b.informed_fraction.samples()) << what;
  EXPECT_EQ(a.estimate_error.samples(), b.estimate_error.samples()) << what;
}

TEST(ChurnDeterminism, ChurnActuallyEngages) {
  const ScenarioResult base = TrialRunner(1).run(churn_spec());
  // The spec's churn must actually move the population, otherwise this
  // suite pins nothing interesting: some trial ends with n above the
  // initial size (joins landed) and some trial loses nodes (crashes fired).
  bool grew = false, shrank = false;
  for (const core::BroadcastReport& r : base.reports) {
    grew = grew || r.n > 256;
    shrank = shrank || r.alive < r.n;
  }
  EXPECT_TRUE(grew);
  EXPECT_TRUE(shrank);
}

TEST(ChurnDeterminism, TrialWorkerCountsAreBitIdentical) {
  const ScenarioSpec spec = churn_spec();
  const ScenarioResult base = TrialRunner(1).run(spec);
  for (const unsigned workers : {2u, 8u}) {
    const ScenarioResult result = TrialRunner(workers).run(spec);
    expect_reports_identical(base.reports, result.reports, "workers");
    expect_aggregates_identical(base.aggregate, result.aggregate, "workers");
  }
}

TEST(ChurnDeterminism, EngineThreadCountsAreBitIdentical) {
  ScenarioSpec spec = churn_spec();
  spec.engine_threads = 1;
  const ScenarioResult base = TrialRunner(1).run(spec);
  for (const unsigned engine_threads : {2u, 8u}) {
    spec.engine_threads = engine_threads;
    const ScenarioResult result = TrialRunner(1).run(spec);
    expect_reports_identical(base.reports, result.reports, "engine_threads");
    expect_aggregates_identical(base.aggregate, result.aggregate, "engine_threads");
  }
}

TEST(ChurnDeterminism, DeliveryBucketCountsAreBitIdentical) {
  ScenarioSpec spec = churn_spec();
  spec.delivery_buckets = 1;
  const ScenarioResult base = TrialRunner(1).run(spec);
  for (const unsigned buckets : {4u, 64u}) {
    spec.delivery_buckets = buckets;
    const ScenarioResult result = TrialRunner(1).run(spec);
    expect_reports_identical(base.reports, result.reports, "delivery_buckets");
    expect_aggregates_identical(base.aggregate, result.aggregate, "delivery_buckets");
  }
}

TEST(ChurnDeterminism, NestedEngineAndTrialParallelism) {
  ScenarioSpec spec = churn_spec();
  spec.engine_threads = 2;
  spec.delivery_buckets = 4;
  const ScenarioResult base = TrialRunner(1).run(spec);
  for (const unsigned workers : {2u, 8u}) {
    const ScenarioResult result = TrialRunner(workers).run(spec);
    expect_reports_identical(base.reports, result.reports, "nested");
    expect_aggregates_identical(base.aggregate, result.aggregate, "nested");
  }
}

TEST(ChurnDeterminism, MembershipServiceIsExecutorInvariant) {
  // The membership algorithm mutates per-listener state in delivery hooks
  // and samples digests from per-(node, round) streams; its trajectories -
  // estimate errors included - must survive every executor shape.
  ScenarioSpec spec;
  spec.name = "membership-determinism";
  spec.algorithm = "membership";
  spec.n = 128;
  spec.trials = 3;
  spec.seed = 21;
  spec.join_rate = 0.5;
  spec.crash_rate = 0.3;
  spec.byzantine_fraction = 0.1;
  const ScenarioResult base = TrialRunner(1).run(spec);
  {
    ScenarioSpec alt = spec;
    alt.delivery_buckets = 64;
    const ScenarioResult result = TrialRunner(2).run(alt);
    expect_reports_identical(base.reports, result.reports, "membership buckets");
    expect_aggregates_identical(base.aggregate, result.aggregate,
                                "membership buckets");
  }
  {
    ScenarioSpec alt = spec;
    alt.engine_threads = 0;  // serial engine is the same trajectory universe
    const ScenarioResult result = TrialRunner(8).run(alt);
    expect_reports_identical(base.reports, result.reports, "membership workers");
    expect_aggregates_identical(base.aggregate, result.aggregate,
                                "membership workers");
  }
}

}  // namespace
}  // namespace gossip::runner
