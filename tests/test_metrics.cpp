// Unit tests for the complexity metering (sim/metrics.hpp), including the
// payload-vs-connection distinction and Delta (involvement) tracking.
#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace gossip::sim {
namespace {

TEST(Metrics, RoundLifecycle) {
  MetricsCollector m(4, /*keep_history=*/false);
  m.begin_round();
  m.end_round();
  EXPECT_EQ(m.run().rounds, 1u);
  m.begin_round();
  m.end_round();
  EXPECT_EQ(m.run().rounds, 2u);
}

TEST(Metrics, DoubleBeginThrows) {
  MetricsCollector m(4, false);
  m.begin_round();
  EXPECT_THROW(m.begin_round(), ContractViolation);
}

TEST(Metrics, EndWithoutBeginThrows) {
  MetricsCollector m(4, false);
  EXPECT_THROW(m.end_round(), ContractViolation);
}

TEST(Metrics, PushCountsPayloadAndConnection) {
  MetricsCollector m(4, false);
  m.begin_round();
  m.record_push(0, 1, 100, /*has_payload=*/true);
  m.record_push(1, 2, 3, /*has_payload=*/false);  // empty push: connection only
  m.end_round();
  const auto& t = m.run().total;
  EXPECT_EQ(t.pushes, 2u);
  EXPECT_EQ(t.connections, 2u);
  EXPECT_EQ(t.payload_messages, 1u);
  EXPECT_EQ(t.bits, 100u);
}

TEST(Metrics, PullRequestIsConnectionOnly) {
  MetricsCollector m(4, false);
  m.begin_round();
  m.record_pull_request(0, 1);
  m.record_pull_response(50, /*has_payload=*/true);
  m.record_pull_response(0, /*has_payload=*/false);  // empty response: free
  m.end_round();
  const auto& t = m.run().total;
  EXPECT_EQ(t.pull_requests, 1u);
  EXPECT_EQ(t.connections, 1u);
  EXPECT_EQ(t.pull_responses, 1u);
  EXPECT_EQ(t.payload_messages, 1u);
  EXPECT_EQ(t.bits, 50u);
}

TEST(Metrics, InvolvementTracksBothEndpoints) {
  MetricsCollector m(4, false);
  m.begin_round();
  // Node 1 receives three communications; everyone else at most two.
  m.record_push(0, 1, 1, true);
  m.record_push(2, 1, 1, true);
  m.record_pull_request(3, 1);
  m.end_round();
  EXPECT_EQ(m.run().total.max_involvement, 3u);
}

TEST(Metrics, InvolvementResetsBetweenRounds) {
  MetricsCollector m(4, false);
  m.begin_round();
  m.record_push(0, 1, 1, true);
  m.record_push(2, 1, 1, true);
  m.end_round();
  m.begin_round();
  m.record_push(0, 1, 1, true);
  m.end_round();
  // Max over rounds is 2 (not 3 accumulated across rounds).
  EXPECT_EQ(m.run().total.max_involvement, 2u);
}

TEST(Metrics, InitiatorCount) {
  MetricsCollector m(4, false);
  m.begin_round();
  m.record_initiator();
  m.record_initiator();
  m.end_round();
  EXPECT_EQ(m.run().total.initiators, 2u);
}

TEST(Metrics, HistoryKeptWhenEnabled) {
  MetricsCollector m(4, /*keep_history=*/true);
  m.begin_round();
  m.record_push(0, 1, 7, true);
  m.end_round();
  m.begin_round();
  m.end_round();
  ASSERT_EQ(m.run().per_round.size(), 2u);
  EXPECT_EQ(m.run().per_round[0].bits, 7u);
  EXPECT_EQ(m.run().per_round[1].bits, 0u);
}

TEST(Metrics, NoHistoryByDefault) {
  MetricsCollector m(4, false);
  m.begin_round();
  m.end_round();
  EXPECT_TRUE(m.run().per_round.empty());
}

TEST(Metrics, ResetClearsEverything) {
  MetricsCollector m(4, true);
  m.begin_round();
  m.record_push(0, 1, 7, true);
  m.end_round();
  m.reset();
  EXPECT_EQ(m.run().rounds, 0u);
  EXPECT_EQ(m.run().total.payload_messages, 0u);
  EXPECT_TRUE(m.run().per_round.empty());
}

TEST(RunStats, PerNodeAverages) {
  RunStats s;
  s.total.payload_messages = 100;
  s.total.connections = 300;
  s.total.bits = 1000;
  EXPECT_DOUBLE_EQ(s.payload_messages_per_node(50), 2.0);
  EXPECT_DOUBLE_EQ(s.connections_per_node(50), 6.0);
  EXPECT_DOUBLE_EQ(s.bits_per_node(50), 20.0);
  EXPECT_DOUBLE_EQ(s.payload_messages_per_node(0), 0.0);
}

// Sharded metering: per-shard count deltas merged via merge_round_delta plus
// endpoint replay through record_involvement must reproduce exactly
// what inline record_push/record_pull_request calls produce.
TEST(Metrics, ShardDeltaMergeMatchesInlineMetering) {
  MetricsCollector inline_m(8, /*keep_history=*/false);
  MetricsCollector merged_m(8, /*keep_history=*/false);
  // Contacts: (initiator, target, bits, has_payload, is_push).
  struct C {
    std::uint32_t from, to;
    std::uint64_t bits;
    bool payload, push;
  };
  const C contacts[] = {
      {0, 3, 100, true, true},  {1, 3, 0, false, true}, {2, 5, 0, false, false},
      {3, 5, 40, true, true},   {4, 3, 0, false, false}, {5, 0, 259, true, true},
  };

  inline_m.begin_round();
  for (const C& c : contacts) {
    inline_m.record_initiator();
    if (c.push) {
      inline_m.record_push(c.from, c.to, c.bits, c.payload);
    } else {
      inline_m.record_pull_request(c.from, c.to);
    }
  }
  inline_m.end_round();

  // Same contacts split across two "shards", counts accumulated offline.
  merged_m.begin_round();
  for (int shard = 0; shard < 2; ++shard) {
    RoundStats delta;
    for (int i = shard * 3; i < shard * 3 + 3; ++i) {
      const C& c = contacts[i];
      ++delta.initiators;
      ++delta.connections;
      if (c.push) {
        ++delta.pushes;
        if (c.payload) {
          ++delta.payload_messages;
          delta.bits += c.bits;
        }
      } else {
        ++delta.pull_requests;
      }
    }
    merged_m.merge_round_delta(delta);
    // Initiator side in shard order; target side deferred like the engine's
    // receiver-bucketed replay (order cannot matter: monotone counters).
    for (int i = shard * 3; i < shard * 3 + 3; ++i) {
      merged_m.record_involvement(contacts[i].from);
    }
  }
  for (const C& c : contacts) merged_m.record_involvement(c.to);
  merged_m.end_round();

  const RoundStats& a = inline_m.run().total;
  const RoundStats& b = merged_m.run().total;
  EXPECT_EQ(a.pushes, b.pushes);
  EXPECT_EQ(a.pull_requests, b.pull_requests);
  EXPECT_EQ(a.payload_messages, b.payload_messages);
  EXPECT_EQ(a.connections, b.connections);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.initiators, b.initiators);
  EXPECT_EQ(a.max_involvement, b.max_involvement);
  EXPECT_EQ(a.max_involvement, 4u);  // node 3: two pushes + one pull + initiating
}

TEST(RoundStats, AccumulateTakesMaxInvolvement) {
  RoundStats a, b;
  a.max_involvement = 5;
  a.pushes = 1;
  b.max_involvement = 3;
  b.pushes = 2;
  a.accumulate(b);
  EXPECT_EQ(a.max_involvement, 5u);
  EXPECT_EQ(a.pushes, 3u);
}

}  // namespace
}  // namespace gossip::sim
