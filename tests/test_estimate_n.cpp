// Tests for guess-test-and-double network size estimation
// (core/estimate_n.hpp, paper Section 2's model justification).
#include "core/estimate_n.hpp"

#include <gtest/gtest.h>

#include "common/math.hpp"

namespace gossip::core {
namespace {

sim::NetworkOptions opts(std::uint32_t n, std::uint64_t seed = 1) {
  sim::NetworkOptions o;
  o.n = n;
  o.seed = seed;
  return o;
}

class EstimateNSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EstimateNSweep, AcceptedGuessCoversN) {
  const std::uint32_t n = GetParam();
  for (std::uint64_t seed : {1ull, 2ull}) {
    sim::Network net(opts(n, seed));
    const auto result = estimate_network_size(net);
    ASSERT_TRUE(result.success) << "n=" << n << " seed=" << seed;
    // The accepted guess must be large enough that the Cluster1 schedule
    // derived from it handles n nodes: log(guess) >= log(n) up to the tower
    // rounding. (Tower guesses: 16, 2^4=16, 2^16, 2^64...)
    EXPECT_GE(loglog2d(result.estimate) + 1.0, loglog2d(n)) << "n=" << n;
    EXPECT_GE(result.attempts, 1u);
    EXPECT_GT(result.rounds, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EstimateNSweep, ::testing::Values(64, 1024, 16384),
                         [](const auto& info) { return "n" + std::to_string(info.param); });

TEST(EstimateN, TowerScheduleKeepsTotalRoundsSmall) {
  // The whole point of tower-doubling: total rounds across all attempts must
  // stay O(log log n)-shaped, not O(log n).
  sim::Network net(opts(16384, 3));
  const auto result = estimate_network_size(net);
  ASSERT_TRUE(result.success);
  EXPECT_LE(result.rounds, 60.0 * loglog2d(16384));
}

TEST(EstimateN, SmallGuessesAreRejected) {
  // At n = 16384 the first tower guess (16) parameterizes schedules far too
  // weak to unify the network; the verifier must reject at least one guess.
  sim::Network net(opts(16384, 5));
  const auto result = estimate_network_size(net);
  ASSERT_TRUE(result.success);
  EXPECT_GE(result.attempts, 2u);
}

TEST(EstimateN, FirstGuessCanSucceedOnTinyNetworks) {
  sim::Network net(opts(16, 7));
  const auto result = estimate_network_size(net);
  EXPECT_TRUE(result.success);
}

TEST(EstimateN, InvalidOptionsThrow) {
  sim::Network net(opts(64));
  EstimateNOptions o;
  o.first_tower_exponent = 5;
  o.max_tower_exponent = 3;
  EXPECT_THROW((void)estimate_network_size(net, o), ContractViolation);
}

TEST(EstimateN, DeterministicInSeed) {
  sim::Network a(opts(1024, 9)), b(opts(1024, 9));
  const auto ra = estimate_network_size(a);
  const auto rb = estimate_network_size(b);
  EXPECT_EQ(ra.estimate, rb.estimate);
  EXPECT_EQ(ra.rounds, rb.rounds);
}

}  // namespace
}  // namespace gossip::core
