// Tests for multi-source broadcast (paper Section 2: the rumor is
// "initially known to one node (or multiple nodes)").
#include <gtest/gtest.h>

#include "core/cluster1.hpp"
#include "core/cluster2.hpp"
#include "sim/engine.hpp"

namespace gossip::core {
namespace {

sim::NetworkOptions opts(std::uint32_t n, std::uint64_t seed = 1) {
  sim::NetworkOptions o;
  o.n = n;
  o.seed = seed;
  return o;
}

TEST(MultiSource, Cluster1ManySources) {
  sim::Network net(opts(4096, 1));
  sim::Engine engine(net);
  Cluster1 algo(engine);
  const std::vector<std::uint32_t> sources{0, 17, 900, 4095};
  const auto report = algo.run(std::span<const std::uint32_t>(sources));
  EXPECT_TRUE(report.all_informed);
}

TEST(MultiSource, Cluster2ManySources) {
  sim::Network net(opts(4096, 2));
  sim::Engine engine(net);
  Cluster2 algo(engine);
  const std::vector<std::uint32_t> sources{1, 2, 3, 4, 5};
  const auto report = algo.run(std::span<const std::uint32_t>(sources));
  EXPECT_TRUE(report.all_informed);
}

TEST(MultiSource, SingleAndMultiAgreeOnSchedule) {
  // Multiple sources change nothing about the deterministic round schedule.
  sim::Network a(opts(1024, 3));
  sim::Engine ea(a);
  Cluster2 ca(ea);
  const auto single = ca.run(0u);

  sim::Network b(opts(1024, 3));
  sim::Engine eb(b);
  Cluster2 cb(eb);
  const std::vector<std::uint32_t> sources{0, 512};
  const auto multi = cb.run(std::span<const std::uint32_t>(sources));

  EXPECT_EQ(single.rounds, multi.rounds);
  EXPECT_TRUE(multi.all_informed);
}

TEST(MultiSource, HalfTheNetworkAsSources) {
  sim::Network net(opts(1024, 5));
  sim::Engine engine(net);
  Cluster1 algo(engine);
  std::vector<std::uint32_t> sources;
  for (std::uint32_t v = 0; v < 1024; v += 2) sources.push_back(v);
  const auto report = algo.run(std::span<const std::uint32_t>(sources));
  EXPECT_TRUE(report.all_informed);
}

TEST(MultiSource, OutOfRangeSourceThrows) {
  sim::Network net(opts(64, 7));
  sim::Engine engine(net);
  Cluster2 algo(engine);
  const std::vector<std::uint32_t> sources{0, 64};
  EXPECT_THROW((void)algo.run(std::span<const std::uint32_t>(sources)), ContractViolation);
}

TEST(MultiSource, AllSourcesDeadThrows) {
  sim::Network net(opts(64, 9));
  net.fail(3);
  sim::Engine engine(net);
  Cluster2 algo(engine);
  const std::vector<std::uint32_t> sources{3};
  EXPECT_THROW((void)algo.run(std::span<const std::uint32_t>(sources)), ContractViolation);
}

TEST(MultiSource, DeadSourceAmongAliveOnesIsFine) {
  sim::Network net(opts(1024, 11));
  net.fail(5);
  sim::Engine engine(net);
  Cluster2 algo(engine);
  const std::vector<std::uint32_t> sources{5, 6};
  const auto report = algo.run(std::span<const std::uint32_t>(sources));
  EXPECT_TRUE(report.all_informed);  // all alive nodes informed
}

}  // namespace
}  // namespace gossip::core
