// Unit tests for knowledge tracking (sim/knowledge.hpp).
#include "sim/knowledge.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace gossip::sim {
namespace {

TEST(Knowledge, InitiallyKnowsOnlySelf) {
  KnowledgeTracker k(3);
  const NodeId own(10);
  EXPECT_TRUE(k.knows(0, own, own));
  EXPECT_FALSE(k.knows(0, NodeId(20), own));
  EXPECT_EQ(k.known_count(0), 0u);
}

TEST(Knowledge, LearnAndQuery) {
  KnowledgeTracker k(2);
  const NodeId own(1);
  k.learn(0, NodeId(99), own);
  EXPECT_TRUE(k.knows(0, NodeId(99), own));
  EXPECT_FALSE(k.knows(1, NodeId(99), NodeId(2)));
  EXPECT_EQ(k.known_count(0), 1u);
  EXPECT_EQ(k.total_knowledge(), 1u);
}

TEST(Knowledge, LearningIsIdempotent) {
  KnowledgeTracker k(1);
  const NodeId own(1);
  k.learn(0, NodeId(5), own);
  k.learn(0, NodeId(5), own);
  EXPECT_EQ(k.known_count(0), 1u);
  EXPECT_EQ(k.total_knowledge(), 1u);
}

TEST(Knowledge, OwnIdNotStored) {
  KnowledgeTracker k(1);
  const NodeId own(7);
  k.learn(0, own, own);
  EXPECT_EQ(k.known_count(0), 0u);
  EXPECT_TRUE(k.knows(0, own, own));  // always implicitly known
}

TEST(Knowledge, SentinelIgnored) {
  KnowledgeTracker k(1);
  const NodeId own(7);
  k.learn(0, NodeId::unclustered(), own);
  EXPECT_EQ(k.known_count(0), 0u);
  EXPECT_FALSE(k.knows(0, NodeId::unclustered(), own));
}

TEST(Knowledge, TotalAccumulatesAcrossNodes) {
  KnowledgeTracker k(3);
  k.learn(0, NodeId(100), NodeId(0));
  k.learn(1, NodeId(100), NodeId(1));
  k.learn(2, NodeId(200), NodeId(2));
  EXPECT_EQ(k.total_knowledge(), 3u);
}

TEST(Knowledge, SpillBeyondInlineSlots) {
  // More learned IDs than the inline slots hold: the node spills to the
  // sorted overflow set and every query keeps working.
  KnowledgeTracker k(2);
  const NodeId own(1);
  for (std::uint64_t i = 0; i < 40; ++i) k.learn(0, NodeId(1000 + i * 3), own);
  EXPECT_EQ(k.known_count(0), 40u);
  EXPECT_EQ(k.total_knowledge(), 40u);
  for (std::uint64_t i = 0; i < 40; ++i) {
    EXPECT_TRUE(k.knows(0, NodeId(1000 + i * 3), own));
    EXPECT_FALSE(k.knows(0, NodeId(1001 + i * 3), own));
  }
  // The second node is untouched by the first node's spill.
  EXPECT_EQ(k.known_count(1), 0u);
  EXPECT_FALSE(k.knows(1, NodeId(1000), NodeId(2)));
}

TEST(Knowledge, SpillIsIdempotentAndUnordered) {
  KnowledgeTracker k(1);
  const NodeId own(1);
  // Descending + duplicated inserts across the spill boundary.
  const std::uint64_t raw[] = {90, 80, 70, 60, 50, 40, 90, 50, 30, 30};
  for (const std::uint64_t r : raw) k.learn(0, NodeId(r), own);
  EXPECT_EQ(k.known_count(0), 7u);
  EXPECT_EQ(k.total_knowledge(), 7u);
  const auto ids = k.known_ids(0);
  ASSERT_EQ(ids.size(), 7u);
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_LT(ids[i - 1], ids[i]);
}

TEST(Knowledge, OwnIdAndSentinelIgnoredAfterSpill) {
  KnowledgeTracker k(1);
  const NodeId own(7);
  for (std::uint64_t i = 0; i < 10; ++i) k.learn(0, NodeId(100 + i), own);
  k.learn(0, own, own);
  k.learn(0, NodeId::unclustered(), own);
  EXPECT_EQ(k.known_count(0), 10u);
  EXPECT_TRUE(k.knows(0, own, own));
  EXPECT_FALSE(k.knows(0, NodeId::unclustered(), own));
}

TEST(Knowledge, KnownIdsSortedInlineCase) {
  KnowledgeTracker k(1);
  const NodeId own(1);
  k.learn(0, NodeId(30), own);
  k.learn(0, NodeId(10), own);
  k.learn(0, NodeId(20), own);
  const auto ids = k.known_ids(0);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], NodeId(10));
  EXPECT_EQ(ids[1], NodeId(20));
  EXPECT_EQ(ids[2], NodeId(30));
}

// ---------------------------------------------------------------------------
// learn_all: the bulk path must converge to exactly the state of the
// equivalent learn() loop, for every starting state (fresh, inline-partial,
// spilled) and batch shape (duplicates, self-IDs, sentinels, unsorted).
// ---------------------------------------------------------------------------

void expect_equivalent(const KnowledgeTracker& a, const KnowledgeTracker& b,
                       std::uint32_t n) {
  EXPECT_EQ(a.total_knowledge(), b.total_knowledge());
  for (std::uint32_t v = 0; v < n; ++v) {
    EXPECT_EQ(a.known_count(v), b.known_count(v)) << "node " << v;
    EXPECT_EQ(a.known_ids(v), b.known_ids(v)) << "node " << v;
  }
}

TEST(Knowledge, LearnAllMatchesSequentialLearn) {
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    constexpr std::uint32_t kNodes = 4;
    KnowledgeTracker bulk(kNodes), seq(kNodes);
    for (std::uint32_t v = 0; v < kNodes; ++v) {
      const NodeId own(v + 1);
      // Random batch: values from a small space force duplicates; a few
      // self-IDs and sentinels ride along.
      std::vector<NodeId> batch;
      const std::size_t len = rng.uniform_below(60);
      for (std::size_t i = 0; i < len; ++i) {
        const std::uint64_t pick = rng.uniform_below(32);
        if (pick == 0) {
          batch.push_back(own);
        } else if (pick == 1) {
          batch.push_back(NodeId::unclustered());
        } else {
          batch.push_back(NodeId(100 + rng.uniform_below(40)));
        }
      }
      bulk.learn_all(v, batch, own);
      for (const NodeId id : batch) seq.learn(v, id, own);
    }
    expect_equivalent(bulk, seq, kNodes);
  }
}

TEST(Knowledge, LearnAllEmptyAndAllFilteredBatches) {
  KnowledgeTracker k(1);
  const NodeId own(9);
  k.learn_all(0, {}, own);
  EXPECT_EQ(k.total_knowledge(), 0u);
  // A large batch of nothing but self-IDs and sentinels learns nothing.
  std::vector<NodeId> noise(30, own);
  for (std::size_t i = 0; i < noise.size(); i += 2) noise[i] = NodeId::unclustered();
  k.learn_all(0, noise, own);
  EXPECT_EQ(k.total_knowledge(), 0u);
  EXPECT_EQ(k.known_count(0), 0u);
}

TEST(Knowledge, LearnAllSpillsInlineNodeInOneStep) {
  KnowledgeTracker bulk(1), seq(1);
  const NodeId own(1);
  // Pre-fill two inline slots, then hit with a batch that overlaps them.
  for (const std::uint64_t r : {50ULL, 60ULL}) {
    bulk.learn(0, NodeId(r), own);
    seq.learn(0, NodeId(r), own);
  }
  std::vector<NodeId> batch;
  for (std::uint64_t i = 0; i < 25; ++i) batch.push_back(NodeId(40 + i * 2));  // 50, 60 included
  bulk.learn_all(0, batch, own);
  for (const NodeId id : batch) seq.learn(0, id, own);
  expect_equivalent(bulk, seq, 1);
  EXPECT_EQ(bulk.known_count(0), 25u);
}

TEST(Knowledge, LearnAllUnionsIntoExistingSpill) {
  KnowledgeTracker bulk(1), seq(1);
  const NodeId own(1);
  for (std::uint64_t i = 0; i < 30; ++i) {
    bulk.learn(0, NodeId(1000 + i * 4), own);
    seq.learn(0, NodeId(1000 + i * 4), own);
  }
  // Interleaved batch: half already known, half new, unsorted, duplicated.
  std::vector<NodeId> batch;
  for (std::uint64_t i = 30; i-- > 0;) {
    batch.push_back(NodeId(1000 + i * 2));
    batch.push_back(NodeId(1000 + i * 2));
  }
  bulk.learn_all(0, batch, own);
  for (const NodeId id : batch) seq.learn(0, id, own);
  expect_equivalent(bulk, seq, 1);
  for (std::uint64_t i = 0; i < 30; ++i) {
    EXPECT_TRUE(bulk.knows(0, NodeId(1000 + i * 2), own));
  }
}

TEST(Knowledge, MemoryBytesGrowsWithKnowledge) {
  KnowledgeTracker k(4);
  const std::size_t base = k.memory_bytes();
  EXPECT_GT(base, 0u);
  for (std::uint64_t i = 0; i < 100; ++i) k.learn(0, NodeId(5000 + i), NodeId(1));
  EXPECT_GT(k.memory_bytes(), base);
}

}  // namespace
}  // namespace gossip::sim
