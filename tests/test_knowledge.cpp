// Unit tests for knowledge tracking (sim/knowledge.hpp).
#include "sim/knowledge.hpp"

#include <gtest/gtest.h>

namespace gossip::sim {
namespace {

TEST(Knowledge, InitiallyKnowsOnlySelf) {
  KnowledgeTracker k(3);
  const NodeId own(10);
  EXPECT_TRUE(k.knows(0, own, own));
  EXPECT_FALSE(k.knows(0, NodeId(20), own));
  EXPECT_EQ(k.known_count(0), 0u);
}

TEST(Knowledge, LearnAndQuery) {
  KnowledgeTracker k(2);
  const NodeId own(1);
  k.learn(0, NodeId(99), own);
  EXPECT_TRUE(k.knows(0, NodeId(99), own));
  EXPECT_FALSE(k.knows(1, NodeId(99), NodeId(2)));
  EXPECT_EQ(k.known_count(0), 1u);
  EXPECT_EQ(k.total_knowledge(), 1u);
}

TEST(Knowledge, LearningIsIdempotent) {
  KnowledgeTracker k(1);
  const NodeId own(1);
  k.learn(0, NodeId(5), own);
  k.learn(0, NodeId(5), own);
  EXPECT_EQ(k.known_count(0), 1u);
  EXPECT_EQ(k.total_knowledge(), 1u);
}

TEST(Knowledge, OwnIdNotStored) {
  KnowledgeTracker k(1);
  const NodeId own(7);
  k.learn(0, own, own);
  EXPECT_EQ(k.known_count(0), 0u);
  EXPECT_TRUE(k.knows(0, own, own));  // always implicitly known
}

TEST(Knowledge, SentinelIgnored) {
  KnowledgeTracker k(1);
  const NodeId own(7);
  k.learn(0, NodeId::unclustered(), own);
  EXPECT_EQ(k.known_count(0), 0u);
  EXPECT_FALSE(k.knows(0, NodeId::unclustered(), own));
}

TEST(Knowledge, TotalAccumulatesAcrossNodes) {
  KnowledgeTracker k(3);
  k.learn(0, NodeId(100), NodeId(0));
  k.learn(1, NodeId(100), NodeId(1));
  k.learn(2, NodeId(200), NodeId(2));
  EXPECT_EQ(k.total_knowledge(), 3u);
}

}  // namespace
}  // namespace gossip::sim
