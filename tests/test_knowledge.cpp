// Unit tests for knowledge tracking (sim/knowledge.hpp).
#include "sim/knowledge.hpp"

#include <gtest/gtest.h>

namespace gossip::sim {
namespace {

TEST(Knowledge, InitiallyKnowsOnlySelf) {
  KnowledgeTracker k(3);
  const NodeId own(10);
  EXPECT_TRUE(k.knows(0, own, own));
  EXPECT_FALSE(k.knows(0, NodeId(20), own));
  EXPECT_EQ(k.known_count(0), 0u);
}

TEST(Knowledge, LearnAndQuery) {
  KnowledgeTracker k(2);
  const NodeId own(1);
  k.learn(0, NodeId(99), own);
  EXPECT_TRUE(k.knows(0, NodeId(99), own));
  EXPECT_FALSE(k.knows(1, NodeId(99), NodeId(2)));
  EXPECT_EQ(k.known_count(0), 1u);
  EXPECT_EQ(k.total_knowledge(), 1u);
}

TEST(Knowledge, LearningIsIdempotent) {
  KnowledgeTracker k(1);
  const NodeId own(1);
  k.learn(0, NodeId(5), own);
  k.learn(0, NodeId(5), own);
  EXPECT_EQ(k.known_count(0), 1u);
  EXPECT_EQ(k.total_knowledge(), 1u);
}

TEST(Knowledge, OwnIdNotStored) {
  KnowledgeTracker k(1);
  const NodeId own(7);
  k.learn(0, own, own);
  EXPECT_EQ(k.known_count(0), 0u);
  EXPECT_TRUE(k.knows(0, own, own));  // always implicitly known
}

TEST(Knowledge, SentinelIgnored) {
  KnowledgeTracker k(1);
  const NodeId own(7);
  k.learn(0, NodeId::unclustered(), own);
  EXPECT_EQ(k.known_count(0), 0u);
  EXPECT_FALSE(k.knows(0, NodeId::unclustered(), own));
}

TEST(Knowledge, TotalAccumulatesAcrossNodes) {
  KnowledgeTracker k(3);
  k.learn(0, NodeId(100), NodeId(0));
  k.learn(1, NodeId(100), NodeId(1));
  k.learn(2, NodeId(200), NodeId(2));
  EXPECT_EQ(k.total_knowledge(), 3u);
}

TEST(Knowledge, SpillBeyondInlineSlots) {
  // More learned IDs than the inline slots hold: the node spills to the
  // sorted overflow set and every query keeps working.
  KnowledgeTracker k(2);
  const NodeId own(1);
  for (std::uint64_t i = 0; i < 40; ++i) k.learn(0, NodeId(1000 + i * 3), own);
  EXPECT_EQ(k.known_count(0), 40u);
  EXPECT_EQ(k.total_knowledge(), 40u);
  for (std::uint64_t i = 0; i < 40; ++i) {
    EXPECT_TRUE(k.knows(0, NodeId(1000 + i * 3), own));
    EXPECT_FALSE(k.knows(0, NodeId(1001 + i * 3), own));
  }
  // The second node is untouched by the first node's spill.
  EXPECT_EQ(k.known_count(1), 0u);
  EXPECT_FALSE(k.knows(1, NodeId(1000), NodeId(2)));
}

TEST(Knowledge, SpillIsIdempotentAndUnordered) {
  KnowledgeTracker k(1);
  const NodeId own(1);
  // Descending + duplicated inserts across the spill boundary.
  const std::uint64_t raw[] = {90, 80, 70, 60, 50, 40, 90, 50, 30, 30};
  for (const std::uint64_t r : raw) k.learn(0, NodeId(r), own);
  EXPECT_EQ(k.known_count(0), 7u);
  EXPECT_EQ(k.total_knowledge(), 7u);
  const auto ids = k.known_ids(0);
  ASSERT_EQ(ids.size(), 7u);
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_LT(ids[i - 1], ids[i]);
}

TEST(Knowledge, OwnIdAndSentinelIgnoredAfterSpill) {
  KnowledgeTracker k(1);
  const NodeId own(7);
  for (std::uint64_t i = 0; i < 10; ++i) k.learn(0, NodeId(100 + i), own);
  k.learn(0, own, own);
  k.learn(0, NodeId::unclustered(), own);
  EXPECT_EQ(k.known_count(0), 10u);
  EXPECT_TRUE(k.knows(0, own, own));
  EXPECT_FALSE(k.knows(0, NodeId::unclustered(), own));
}

TEST(Knowledge, KnownIdsSortedInlineCase) {
  KnowledgeTracker k(1);
  const NodeId own(1);
  k.learn(0, NodeId(30), own);
  k.learn(0, NodeId(10), own);
  k.learn(0, NodeId(20), own);
  const auto ids = k.known_ids(0);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], NodeId(10));
  EXPECT_EQ(ids[1], NodeId(20));
  EXPECT_EQ(ids[2], NodeId(30));
}

TEST(Knowledge, MemoryBytesGrowsWithKnowledge) {
  KnowledgeTracker k(4);
  const std::size_t base = k.memory_bytes();
  EXPECT_GT(base, 0u);
  for (std::uint64_t i = 0; i < 100; ++i) k.learn(0, NodeId(5000 + i), NodeId(1));
  EXPECT_GT(k.memory_bytes(), base);
}

}  // namespace
}  // namespace gossip::sim
