// Fault determinism under parallelism: a scenario with a lossy channel AND
// a scheduled mid-run crash must produce bit-identical trajectories across
// engine thread counts {1, 2, 8} (sharded phase-1 executors) and TrialRunner
// worker counts {1, 2, 8} - including when both nest. Loss decisions come
// from (network seed, round, initiator) counter streams and crashes fire on
// the engine's round clock, so neither may depend on who runs what (see
// sim/fault.hpp and runner/trial_runner.hpp; CI additionally diffs
// gossip_run JSON on scenarios/lossy_crash.scn).
#include <gtest/gtest.h>

#include <vector>

#include "runner/trial_runner.hpp"

namespace gossip::runner {
namespace {

ScenarioSpec faulty_spec() {
  ScenarioSpec spec;
  spec.name = "fault-determinism";
  spec.algorithm = "push_pull";
  spec.n = 256;
  spec.trials = 6;
  spec.seed = 7;
  spec.rumor_bits = 128;
  spec.fault_fraction = 0.1;
  spec.fault_strategy = sim::FaultStrategy::kRandomSubset;
  spec.crash_round = 3;   // fire the crash set mid-broadcast
  spec.loss_prob = 0.15;  // on a lossy fabric
  return spec;
}

void expect_reports_identical(const std::vector<core::BroadcastReport>& a,
                              const std::vector<core::BroadcastReport>& b,
                              const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t].rounds, b[t].rounds) << what << " trial " << t;
    EXPECT_EQ(a[t].informed, b[t].informed) << what << " trial " << t;
    EXPECT_EQ(a[t].alive, b[t].alive) << what << " trial " << t;
    EXPECT_EQ(a[t].stats.total.bits, b[t].stats.total.bits) << what << " trial " << t;
    EXPECT_EQ(a[t].stats.total.payload_messages, b[t].stats.total.payload_messages)
        << what << " trial " << t;
    EXPECT_EQ(a[t].stats.total.connections, b[t].stats.total.connections)
        << what << " trial " << t;
    EXPECT_EQ(a[t].stats.total.max_involvement, b[t].stats.total.max_involvement)
        << what << " trial " << t;
  }
}

void expect_aggregates_identical(const analysis::ReportAggregate& a,
                                 const analysis::ReportAggregate& b,
                                 const char* what) {
  EXPECT_EQ(a.runs, b.runs) << what;
  EXPECT_EQ(a.failures, b.failures) << what;
  EXPECT_EQ(a.rounds.samples(), b.rounds.samples()) << what;
  EXPECT_EQ(a.uninformed.samples(), b.uninformed.samples()) << what;
  EXPECT_EQ(a.total_bits.samples(), b.total_bits.samples()) << what;
  EXPECT_EQ(a.informed_fraction.samples(), b.informed_fraction.samples()) << what;
}

TEST(FaultDeterminism, TrialWorkerCountsAreBitIdentical) {
  const ScenarioSpec spec = faulty_spec();
  const ScenarioResult base = TrialRunner(1).run(spec);
  // The faults actually engage: the crash set fires (alive < n) on a lossy
  // fabric, otherwise this suite pins nothing interesting.
  EXPECT_EQ(base.reports.front().alive, spec.n - spec.fault_count());
  for (const unsigned workers : {2u, 8u}) {
    const ScenarioResult result = TrialRunner(workers).run(spec);
    expect_reports_identical(base.reports, result.reports, "workers");
    expect_aggregates_identical(base.aggregate, result.aggregate, "workers");
  }
}

TEST(FaultDeterminism, EngineThreadCountsAreBitIdentical) {
  ScenarioSpec spec = faulty_spec();
  spec.engine_threads = 1;
  const ScenarioResult base = TrialRunner(1).run(spec);
  for (const unsigned engine_threads : {2u, 8u}) {
    spec.engine_threads = engine_threads;
    const ScenarioResult result = TrialRunner(1).run(spec);
    expect_reports_identical(base.reports, result.reports, "engine_threads");
    expect_aggregates_identical(base.aggregate, result.aggregate, "engine_threads");
  }
}

TEST(FaultDeterminism, NestedEngineAndTrialParallelism) {
  ScenarioSpec spec = faulty_spec();
  spec.engine_threads = 2;
  const ScenarioResult base = TrialRunner(1).run(spec);
  for (const unsigned workers : {2u, 8u}) {
    const ScenarioResult result = TrialRunner(workers).run(spec);
    expect_reports_identical(base.reports, result.reports, "nested");
    expect_aggregates_identical(base.aggregate, result.aggregate, "nested");
  }
}

TEST(FaultDeterminism, CrashBeyondTerminationEqualsFaultFreeRun) {
  // A scheduled crash that never fires must leave the trajectory untouched:
  // the timeline hooks consume no engine randomness and the victims only
  // commit from the adversary's own stream.
  ScenarioSpec never = faulty_spec();
  never.loss_prob = 0.0;
  never.crash_round = 1 << 20;  // far beyond any push_pull run
  ScenarioSpec fault_free = faulty_spec();
  fault_free.loss_prob = 0.0;
  fault_free.fault_fraction = 0.0;
  fault_free.crash_round = ScenarioSpec::kCrashPreRun;
  const ScenarioResult a = TrialRunner(1).run(never);
  const ScenarioResult b = TrialRunner(1).run(fault_free);
  expect_reports_identical(a.reports, b.reports, "never-fired crash");
}

TEST(FaultDeterminism, LossSlowsPushPullDown) {
  ScenarioSpec lossless = faulty_spec();
  lossless.fault_fraction = 0.0;
  lossless.crash_round = ScenarioSpec::kCrashPreRun;
  lossless.loss_prob = 0.0;
  ScenarioSpec lossy = lossless;
  lossy.loss_prob = 0.4;
  const ScenarioResult fast = TrialRunner(2).run(lossless);
  const ScenarioResult slow = TrialRunner(2).run(lossy);
  // Dropping 40% of payloads must cost rounds - and still complete (the
  // oracle stop retries until every alive node is informed).
  EXPECT_GT(slow.aggregate.rounds.mean(), fast.aggregate.rounds.mean());
  EXPECT_DOUBLE_EQ(slow.aggregate.informed_fraction.mean(), 1.0);
}

}  // namespace
}  // namespace gossip::runner
