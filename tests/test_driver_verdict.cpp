// Unit tests for the collect+verdict family of cluster primitives
// (cluster/driver.hpp): ClusterActivate, ClusterSize, ClusterDissolve,
// ClusterResize and ClusterShare (paper Section 3.2).
//
// Clusters are staged directly through the Clustering state; knowledge
// tracking is off here (the organic-formation honesty tests live in
// test_driver_push_merge.cpp).
#include <gtest/gtest.h>

#include <map>

#include "cluster/driver.hpp"

namespace gossip::cluster {
namespace {

struct Fixture {
  explicit Fixture(std::uint32_t n, std::uint64_t seed = 1)
      : net(make_opts(n, seed)), engine(net), driver(engine, make_driver_opts()) {}

  static sim::NetworkOptions make_opts(std::uint32_t n, std::uint64_t seed) {
    sim::NetworkOptions o;
    o.n = n;
    o.seed = seed;
    return o;
  }
  static DriverOptions make_driver_opts() {
    DriverOptions d;
    d.validate = true;
    return d;
  }

  /// Stages a flat cluster led by `leader` with the given followers.
  void stage_cluster(std::uint32_t leader, std::initializer_list<std::uint32_t> followers) {
    auto& cl = driver.clustering();
    cl.make_leader(leader);
    for (std::uint32_t f : followers) cl.set_follow(f, net.id_of(leader));
  }

  sim::Network net;
  sim::Engine engine;
  Driver driver;
};

TEST(DriverActivate, AllOrNothingProbabilities) {
  Fixture fx(16);
  fx.stage_cluster(0, {1, 2, 3});
  fx.stage_cluster(4, {5, 6});
  fx.driver.activate(1.0);
  for (std::uint32_t v : {0u, 1u, 2u, 3u, 4u, 5u, 6u}) {
    EXPECT_TRUE(fx.driver.clustering().active(v)) << v;
  }
  fx.driver.activate(0.0);
  for (std::uint32_t v : {0u, 1u, 2u, 3u, 4u, 5u, 6u}) {
    EXPECT_FALSE(fx.driver.clustering().active(v)) << v;
  }
}

TEST(DriverActivate, FollowersAgreeWithTheirLeader) {
  Fixture fx(64);
  for (std::uint32_t leader = 0; leader < 64; leader += 4) {
    fx.stage_cluster(leader, {leader + 1, leader + 2, leader + 3});
  }
  fx.driver.activate(0.5);
  const auto& cl = fx.driver.clustering();
  for (std::uint32_t leader = 0; leader < 64; leader += 4) {
    for (std::uint32_t off = 1; off <= 3; ++off) {
      EXPECT_EQ(cl.active(leader + off), cl.active(leader)) << leader + off;
    }
  }
}

TEST(DriverActivate, ProbabilityIsRoughlyRespected) {
  // 256 singleton clusters, p = 0.25: expect ~64 active.
  Fixture fx(256);
  for (std::uint32_t v = 0; v < 256; ++v) fx.driver.clustering().make_leader(v);
  fx.driver.activate(0.25);
  int active = 0;
  for (std::uint32_t v = 0; v < 256; ++v) active += fx.driver.clustering().active(v);
  EXPECT_GT(active, 30);
  EXPECT_LT(active, 110);
}

TEST(DriverActivate, TakesTwoRoundsOfBudgetAtMostOne) {
  Fixture fx(8);
  fx.stage_cluster(0, {1});
  const auto before = fx.engine.rounds();
  fx.driver.activate(1.0);
  EXPECT_EQ(fx.engine.rounds() - before, 1u);
}

TEST(DriverSizes, MeasuresExactClusterSizes) {
  Fixture fx(16);
  fx.stage_cluster(0, {1, 2, 3, 4});
  fx.stage_cluster(8, {9});
  fx.driver.set_all_active(true);
  fx.driver.compute_sizes(false);
  const auto& cl = fx.driver.clustering();
  for (std::uint32_t v : {0u, 1u, 2u, 3u, 4u}) EXPECT_EQ(cl.size_estimate(v), 5u) << v;
  for (std::uint32_t v : {8u, 9u}) EXPECT_EQ(cl.size_estimate(v), 2u) << v;
  EXPECT_EQ(fx.engine.rounds(), 2u);
}

TEST(DriverSizes, PrevSizeShifted) {
  Fixture fx(8);
  fx.stage_cluster(0, {1, 2});
  fx.driver.compute_sizes(false);
  EXPECT_EQ(fx.driver.clustering().size_estimate(0), 3u);
  // Shrink the cluster and re-measure.
  fx.driver.clustering().make_unclustered(2);
  fx.driver.compute_sizes(false);
  EXPECT_EQ(fx.driver.clustering().size_estimate(0), 2u);
  EXPECT_EQ(fx.driver.clustering().prev_size_estimate(0), 3u);
}

TEST(DriverSizes, OnlyActiveFilterSkipsInactive) {
  Fixture fx(16);
  fx.stage_cluster(0, {1, 2});
  fx.stage_cluster(4, {5, 6});
  fx.driver.clustering().set_active(0, true);
  fx.driver.clustering().set_active(1, true);
  fx.driver.clustering().set_active(2, true);
  fx.driver.compute_sizes(/*only_active=*/true);
  EXPECT_EQ(fx.driver.clustering().size_estimate(0), 3u);
  EXPECT_EQ(fx.driver.clustering().size_estimate(4), 0u);  // untouched
}

TEST(DriverDissolve, BelowThresholdDisbands) {
  Fixture fx(16);
  fx.stage_cluster(0, {1, 2, 3, 4});  // size 5
  fx.stage_cluster(8, {9});           // size 2
  fx.driver.dissolve_below(4);
  const auto& cl = fx.driver.clustering();
  for (std::uint32_t v : {0u, 1u, 2u, 3u, 4u}) EXPECT_TRUE(cl.is_clustered(v)) << v;
  for (std::uint32_t v : {8u, 9u}) EXPECT_TRUE(cl.is_unclustered(v)) << v;
}

TEST(DriverDissolve, ExactThresholdSurvives) {
  Fixture fx(8);
  fx.stage_cluster(0, {1, 2});  // size 3
  fx.driver.dissolve_below(3);
  EXPECT_TRUE(fx.driver.clustering().is_clustered(0));
  fx.driver.dissolve_below(4);
  EXPECT_TRUE(fx.driver.clustering().is_unclustered(0));
}

TEST(DriverResize, SplitsIntoContiguousGroups) {
  Fixture fx(32);
  fx.stage_cluster(0, {1,  2,  3,  4,  5,  6,  7,  8,  9, 10, 11});  // size 12
  fx.driver.resize(4, false);
  const auto& cl = fx.driver.clustering();
  const auto sizes = cl.cluster_sizes();
  EXPECT_EQ(sizes.size(), 3u);  // floor(12/4) groups
  std::map<NodeId, std::vector<NodeId>> groups;
  for (std::uint32_t v = 0; v <= 11; ++v) {
    ASSERT_TRUE(cl.is_clustered(v)) << v;
    groups[cl.is_leader(v) ? fx.net.id_of(v) : cl.follow(v)].push_back(fx.net.id_of(v));
  }
  for (auto& [leader, members] : groups) {
    EXPECT_EQ(members.size(), 4u);
    // Leader is the largest ID of its (contiguous) group.
    for (NodeId m : members) EXPECT_LE(m, leader);
  }
  // Groups are contiguous in ID space: the max of one group is below the min
  // of the next.
  std::vector<std::pair<NodeId, NodeId>> ranges;  // (min, max=leader)
  for (auto& [leader, members] : groups) {
    NodeId mn = members[0];
    for (NodeId m : members) mn = std::min(mn, m);
    ranges.emplace_back(mn, leader);
  }
  std::sort(ranges.begin(), ranges.end());
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_LT(ranges[i - 1].second, ranges[i].first);
  }
  EXPECT_TRUE(cl.is_flat());
}

TEST(DriverResize, SmallClusterKeptWhole) {
  Fixture fx(8);
  fx.stage_cluster(0, {1, 2});  // size 3 < target 8
  fx.driver.resize(8, false);
  EXPECT_EQ(fx.driver.clustering().cluster_sizes().size(), 1u);
  EXPECT_TRUE(fx.driver.clustering().is_clustered(1));
}

TEST(DriverResize, ResultingSizesBelowTwiceTarget) {
  Fixture fx(64);
  std::initializer_list<std::uint32_t> followers{1,  2,  3,  4,  5,  6,  7,  8,  9,  10,
                                                 11, 12, 13, 14, 15, 16, 17, 18, 19, 20};
  fx.stage_cluster(0, followers);  // size 21
  fx.driver.resize(6, false);      // floor(21/6) = 3 groups of 7
  for (const auto& [leader, size] : fx.driver.clustering().cluster_sizes()) {
    EXPECT_GE(size, 6u);
    EXPECT_LT(size, 12u);  // "after a cluster resizing step all clusters have size at most 2s-1"
  }
}

TEST(DriverShare, SpreadsRumorWithinEveryCluster) {
  Fixture fx(16);
  fx.stage_cluster(0, {1, 2, 3});
  fx.stage_cluster(8, {9, 10});
  std::vector<std::uint8_t> informed(16, 0);
  informed[2] = 1;  // a follower of cluster 0 knows the rumor
  fx.driver.share_rumor(informed, /*collect_first=*/true);
  for (std::uint32_t v : {0u, 1u, 2u, 3u}) EXPECT_TRUE(informed[v]) << v;
  for (std::uint32_t v : {8u, 9u, 10u}) EXPECT_FALSE(informed[v]) << v;
  // Unclustered nodes never get it from a share.
  EXPECT_FALSE(informed[5]);
}

TEST(DriverShare, WithoutCollectOnlyLeaderKnowledgeSpreads) {
  Fixture fx(8);
  fx.stage_cluster(0, {1, 2});
  std::vector<std::uint8_t> informed(8, 0);
  informed[1] = 1;  // follower holds the rumor but nobody collects it
  fx.driver.share_rumor(informed, /*collect_first=*/false);
  EXPECT_FALSE(informed[0]);
  EXPECT_FALSE(informed[2]);
  // Now with the leader informed the distribute round works.
  informed[0] = 1;
  fx.driver.share_rumor(informed, /*collect_first=*/false);
  EXPECT_TRUE(informed[2]);
}

TEST(DriverVerdict, CustomDecideSeesSortedMemberIds) {
  Fixture fx(8);
  fx.stage_cluster(3, {0, 1, 6});
  bool called = false;
  fx.driver.collect_and_verdict(
      false, /*with_ids=*/true,
      [&](std::uint32_t leader, std::uint64_t size, std::vector<NodeId>& members) {
        called = true;
        EXPECT_EQ(leader, 3u);
        EXPECT_EQ(size, 4u);
        EXPECT_EQ(members.size(), 4u);
        EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
        return Driver::Verdict{};
      });
  EXPECT_TRUE(called);
}

TEST(DriverVerdict, DissolveVerdictAppliesToEveryMember) {
  Fixture fx(8);
  fx.stage_cluster(0, {1, 2, 3});
  fx.driver.collect_and_verdict(false, false,
                                [](std::uint32_t, std::uint64_t, std::vector<NodeId>&) {
                                  Driver::Verdict v;
                                  v.dissolve = true;
                                  return v;
                                });
  for (std::uint32_t v = 0; v < 4; ++v) {
    EXPECT_TRUE(fx.driver.clustering().is_unclustered(v)) << v;
  }
}

TEST(DriverVerdict, ActivationFlagDistributed) {
  Fixture fx(8);
  fx.stage_cluster(0, {1, 2});
  fx.driver.collect_and_verdict(false, false,
                                [](std::uint32_t, std::uint64_t, std::vector<NodeId>&) {
                                  Driver::Verdict v;
                                  v.active = false;
                                  v.size_hint = 3;
                                  return v;
                                });
  for (std::uint32_t v = 0; v < 3; ++v) {
    EXPECT_FALSE(fx.driver.clustering().active(v)) << v;
    EXPECT_EQ(fx.driver.clustering().size_estimate(v), 3u) << v;
  }
}

}  // namespace
}  // namespace gossip::cluster
