// Integration tests for Theorem 19: with F oblivious node failures the
// algorithms keep their guarantees and inform all but o(F) survivors.
#include <gtest/gtest.h>

#include "baselines/avin_elsasser.hpp"
#include "core/broadcast.hpp"
#include "sim/fault.hpp"

namespace gossip {
namespace {

core::BroadcastReport run_with_failures(core::Algorithm alg, std::uint32_t n,
                                        std::uint32_t f, sim::FaultStrategy strategy,
                                        std::uint64_t seed) {
  sim::NetworkOptions o;
  o.n = n;
  o.seed = seed;
  sim::Network net(o);
  // Oblivious adversary: failures drawn from a dedicated stream, fixed
  // before the algorithm runs.
  Rng adversary(mix64(seed ^ 0xadf0ULL));
  std::uint32_t source = 0;
  const auto failures = sim::choose_failures(net, f, strategy, adversary);
  for (std::uint32_t v : failures) net.fail(v);
  while (!net.alive(source)) ++source;

  core::BroadcastOptions bo;
  bo.algorithm = alg;
  bo.source = source;
  bo.delta = 256;
  return core::broadcast(net, bo);
}

struct Case {
  core::Algorithm alg;
  sim::FaultStrategy strategy;
};

class FaultToleranceSweep : public ::testing::TestWithParam<Case> {};

TEST_P(FaultToleranceSweep, AlmostAllSurvivorsInformed) {
  const auto [alg, strategy] = GetParam();
  const std::uint32_t n = 16384;
  const std::uint32_t f = n / 10;  // 10% failures
  std::uint64_t total_uninformed = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto report = run_with_failures(alg, n, f, strategy, seed);
    EXPECT_EQ(report.alive, n - f);
    total_uninformed += report.uninformed();
  }
  // Theorem 19: all but o(F) survivors informed. Accept < F/10 uninformed
  // per run on average (measured values are typically ~0).
  EXPECT_LT(total_uninformed, 3ull * f / 10);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FaultToleranceSweep,
    ::testing::Values(Case{core::Algorithm::kCluster1, sim::FaultStrategy::kRandomSubset},
                      Case{core::Algorithm::kCluster1, sim::FaultStrategy::kSmallestIds},
                      Case{core::Algorithm::kCluster2, sim::FaultStrategy::kRandomSubset},
                      Case{core::Algorithm::kCluster2, sim::FaultStrategy::kSmallestIds},
                      Case{core::Algorithm::kCluster2, sim::FaultStrategy::kIndexStride},
                      Case{core::Algorithm::kCluster3PushPull,
                           sim::FaultStrategy::kRandomSubset}),
    [](const auto& info) {
      std::string name = std::string(core::to_string(info.param.alg)) + "_" +
                         sim::to_string(info.param.strategy);
      for (char& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name;
    });

TEST(FaultTolerance, HeavyFailuresStillMostlyInform) {
  // 30% failures: the guarantee degrades gracefully, not catastrophically.
  const std::uint32_t n = 16384;
  const auto report = run_with_failures(core::Algorithm::kCluster2, n, 3 * n / 10,
                                        sim::FaultStrategy::kRandomSubset, 7);
  EXPECT_GT(report.informed_fraction(), 0.97);
}

TEST(FaultTolerance, ComplexityPreservedUnderFailures) {
  // Theorem 19: running time and message complexity keep their bounds.
  const std::uint32_t n = 16384;
  const auto clean = run_with_failures(core::Algorithm::kCluster2, n, 0,
                                       sim::FaultStrategy::kRandomSubset, 9);
  const auto faulty = run_with_failures(core::Algorithm::kCluster2, n, n / 10,
                                        sim::FaultStrategy::kRandomSubset, 9);
  EXPECT_EQ(faulty.rounds, clean.rounds);  // deterministic round schedule
  EXPECT_LT(faulty.payload_messages_per_node(),
            clean.payload_messages_per_node() * 1.5 + 2.0);
}

TEST(FaultTolerance, SmallestIdAdversaryCannotStopMergeToSmallest) {
  // MergeAllClusters merges toward the smallest *surviving* cluster ID;
  // killing the globally smallest IDs must not break completion.
  const std::uint32_t n = 4096;
  const auto report = run_with_failures(core::Algorithm::kCluster1, n, n / 8,
                                        sim::FaultStrategy::kSmallestIds, 11);
  EXPECT_GT(report.informed_fraction(), 0.99);
}

TEST(FaultTolerance, DeltaBoundHoldsUnderFailures) {
  const std::uint32_t n = 16384;
  const auto report = run_with_failures(core::Algorithm::kCluster3PushPull, n, n / 10,
                                        sim::FaultStrategy::kRandomSubset, 13);
  EXPECT_LE(report.max_delta(), 256u);
  EXPECT_GT(report.informed_fraction(), 0.99);
}

}  // namespace
}  // namespace gossip
