// Tests for the graph utilities (analysis/graph.hpp).
#include "analysis/graph.hpp"

#include <gtest/gtest.h>

namespace gossip::analysis {
namespace {

Graph path_graph(std::uint32_t n) {
  Graph g(n);
  for (std::uint32_t v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph cycle_graph(std::uint32_t n) {
  Graph g = path_graph(n);
  g.add_edge(n - 1, 0);
  return g;
}

Graph star_graph(std::uint32_t n) {
  Graph g(n);
  for (std::uint32_t v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

TEST(Graph, EdgesAndDegrees) {
  Graph g = star_graph(10);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.max_degree(), 9u);
  EXPECT_EQ(g.neighbors(0).size(), 9u);
  EXPECT_EQ(g.neighbors(3).size(), 1u);
}

TEST(Graph, SelfLoopsIgnored) {
  Graph g(4);
  g.add_edge(1, 1);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, BfsDistancesOnPath) {
  Graph g = path_graph(6);
  const auto d = g.bfs_distances(0);
  for (std::uint32_t v = 0; v < 6; ++v) EXPECT_EQ(d[v], v);
}

TEST(Graph, BfsUnreachable) {
  Graph g(4);
  g.add_edge(0, 1);
  const auto d = g.bfs_distances(0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_FALSE(g.connected());
}

TEST(Graph, Connectivity) {
  EXPECT_TRUE(path_graph(8).connected());
  EXPECT_TRUE(cycle_graph(8).connected());
  Graph g(3);
  EXPECT_FALSE(g.connected());
}

TEST(Graph, EccentricityAndDiameter) {
  EXPECT_EQ(path_graph(7).eccentricity(0), 6u);
  EXPECT_EQ(path_graph(7).eccentricity(3), 3u);
  EXPECT_EQ(path_graph(7).diameter_exact(), 6u);
  EXPECT_EQ(cycle_graph(8).diameter_exact(), 4u);
  EXPECT_EQ(star_graph(9).diameter_exact(), 2u);
}

TEST(Graph, DiameterOfDisconnectedIsUnreachable) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_EQ(g.diameter_exact(), kUnreachable);
  EXPECT_EQ(g.eccentricity(0), kUnreachable);
}

TEST(Graph, DiameterBoundsBracketTruth) {
  Rng rng(5);
  for (std::uint32_t n : {16u, 64u, 128u}) {
    Graph g = cycle_graph(n);
    const auto exact = g.diameter_exact();
    const auto b = g.diameter_bounds(4, rng);
    EXPECT_LE(b.lower, exact);
    EXPECT_GE(b.upper, exact);
  }
}

TEST(Graph, DiameterBoundsTightOnPath) {
  // Double-sweep from any vertex of a path finds an endpoint, so the lower
  // bound is exact after the second sweep.
  Rng rng(7);
  Graph g = path_graph(50);
  const auto b = g.diameter_bounds(3, rng);
  EXPECT_EQ(b.lower, 49u);
}

TEST(Graph, DiameterBoundsDisconnected) {
  Graph g(4);
  g.add_edge(0, 1);
  Rng rng(9);
  const auto b = g.diameter_bounds(2, rng);
  EXPECT_EQ(b.lower, kUnreachable);
  EXPECT_EQ(b.upper, kUnreachable);
}

TEST(Graph, SingleVertex) {
  Graph g(1);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.diameter_exact(), 0u);
}

}  // namespace
}  // namespace gossip::analysis
