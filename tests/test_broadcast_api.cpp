// Tests for the one-call public API (core/broadcast.hpp).
#include "core/broadcast.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace gossip::core {
namespace {

sim::NetworkOptions opts(std::uint32_t n, std::uint64_t seed = 1) {
  sim::NetworkOptions o;
  o.n = n;
  o.seed = seed;
  return o;
}

class BroadcastAlgorithms : public ::testing::TestWithParam<Algorithm> {};

TEST_P(BroadcastAlgorithms, EndToEnd) {
  sim::Network net(opts(4096, 3));
  BroadcastOptions o;
  o.algorithm = GetParam();
  o.delta = 128;
  o.source = 17;
  const auto report = broadcast(net, o);
  EXPECT_TRUE(report.all_informed);
  EXPECT_GT(report.rounds, 0u);
  EXPECT_FALSE(report.phases.empty());
}

INSTANTIATE_TEST_SUITE_P(All, BroadcastAlgorithms,
                         ::testing::Values(Algorithm::kCluster1, Algorithm::kCluster2,
                                           Algorithm::kCluster3PushPull),
                         [](const auto& info) {
                           switch (info.param) {
                             case Algorithm::kCluster1: return "Cluster1";
                             case Algorithm::kCluster2: return "Cluster2";
                             case Algorithm::kCluster3PushPull: return "Cluster3PushPull";
                           }
                           return "unknown";
                         });

TEST(Broadcast, ToStringNames) {
  EXPECT_STREQ(to_string(Algorithm::kCluster1), "Cluster1");
  EXPECT_STREQ(to_string(Algorithm::kCluster2), "Cluster2");
  EXPECT_STREQ(to_string(Algorithm::kCluster3PushPull), "Cluster3+PushPull");
}

TEST(Broadcast, ValidateFlagRunsCleanly) {
  sim::Network net(opts(1024, 5));
  BroadcastOptions o;
  o.validate = true;
  EXPECT_TRUE(broadcast(net, o).all_informed);
}

TEST(Broadcast, CombinedReportForDeltaVariant) {
  sim::Network net(opts(4096, 7));
  BroadcastOptions o;
  o.algorithm = Algorithm::kCluster3PushPull;
  o.delta = 256;
  const auto report = broadcast(net, o);
  EXPECT_TRUE(report.all_informed);
  // Phases from both stages present, rounds covering the whole execution.
  std::uint64_t sum = 0;
  bool saw_grow = false, saw_spread = false;
  for (const auto& p : report.phases) {
    sum += p.rounds;
    saw_grow |= p.name == "grow";
    saw_spread |= p.name == "cluster_push_pull";
  }
  EXPECT_TRUE(saw_grow);
  EXPECT_TRUE(saw_spread);
  EXPECT_EQ(sum, report.rounds);
  EXPECT_LE(report.max_delta(), o.delta);
}

TEST(Broadcast, DeltaTooSmallThrows) {
  sim::Network net(opts(1024));
  BroadcastOptions o;
  o.algorithm = Algorithm::kCluster3PushPull;
  o.delta = 4;
  EXPECT_THROW((void)broadcast(net, o), ContractViolation);
}

TEST(Broadcast, CustomOptionsArePassedThrough) {
  sim::Network net(opts(1024, 9));
  BroadcastOptions o;
  o.algorithm = Algorithm::kCluster1;
  o.cluster1.extra_pull_rounds = 12;  // more pull rounds => more total rounds
  const auto more = broadcast(net, o);
  sim::Network net2(opts(1024, 9));
  BroadcastOptions o2;
  o2.algorithm = Algorithm::kCluster1;
  o2.cluster1.extra_pull_rounds = 2;
  const auto fewer = broadcast(net2, o2);
  EXPECT_GT(more.rounds, fewer.rounds);
}

TEST(Broadcast, ReportDerivedAccessors) {
  sim::Network net(opts(1024, 11));
  const auto report = broadcast(net, BroadcastOptions{});
  EXPECT_DOUBLE_EQ(report.informed_fraction(), 1.0);
  EXPECT_EQ(report.uninformed(), 0u);
  EXPECT_GT(report.payload_messages_per_node(), 0.0);
  EXPECT_GE(report.connections_per_node(), report.payload_messages_per_node());
  EXPECT_GT(report.bits_per_node(), 0.0);
}

}  // namespace
}  // namespace gossip::core
