// Unit tests for the table printer (common/table.hpp).
#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"

namespace gossip {
namespace {

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.14159, 4), "3.1416");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Table, PrintsTitleHeadersAndRows) {
  Table t("Demo", {"n", "rounds", "ratio"});
  t.row().add(std::uint64_t{1024}).add(12).add(1.5, 2);
  t.row().add(std::uint64_t{2048}).add(13).add(1.62, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("rounds"), std::string::npos);
  EXPECT_NE(out.find("1024"), std::string::npos);
  EXPECT_NE(out.find("1.62"), std::string::npos);
}

TEST(Table, AlignsColumns) {
  Table t("T", {"a", "b"});
  t.row().add("x").add("yyyy");
  t.row().add("zzzzzz").add("w");
  std::ostringstream os;
  t.print(os);
  // Both data lines must be the same length (padded columns).
  std::istringstream is(os.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) {
    if (!line.empty() && line.find("==") == std::string::npos &&
        line.find("---") == std::string::npos) {
      lines.push_back(line);
    }
  }
  ASSERT_GE(lines.size(), 3u);  // header + 2 rows
  EXPECT_EQ(lines[1].size(), lines[2].size());
}

TEST(Table, AddBeforeRowThrows) {
  Table t("T", {"a"});
  EXPECT_THROW(t.add("x"), ContractViolation);
}

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table("T", {}), ContractViolation);
}

TEST(Table, NumRows) {
  Table t("T", {"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.row().add("1");
  t.row().add("2");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, HandlesShortRows) {
  Table t("T", {"a", "b", "c"});
  t.row().add("only-one");
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace gossip
