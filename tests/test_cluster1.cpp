// Tests for Cluster1 (paper Algorithm 1, Theorem 9): parameterized
// correctness sweep, round-complexity shape, and structural postconditions.
#include "core/cluster1.hpp"

#include <gtest/gtest.h>

#include "common/math.hpp"
#include "sim/engine.hpp"

namespace gossip::core {
namespace {

struct Case {
  std::uint32_t n;
  std::uint64_t seed;
};

class Cluster1Sweep : public ::testing::TestWithParam<Case> {};

TEST_P(Cluster1Sweep, InformsEveryNode) {
  const auto [n, seed] = GetParam();
  sim::NetworkOptions o;
  o.n = n;
  o.seed = seed;
  o.track_knowledge = n <= 4096;  // honesty enforcement where affordable
  sim::Network net(o);
  sim::Engine engine(net);
  cluster::DriverOptions d;
  d.validate = true;
  Cluster1 algo(engine, Cluster1Options{}, d);
  const auto report = algo.run(/*source=*/n / 2);

  EXPECT_TRUE(report.all_informed) << report.informed << "/" << report.alive;
  EXPECT_EQ(report.n, n);
  EXPECT_EQ(report.rounds, report.stats.rounds);
  // Final structure: one flat cluster holding everyone.
  EXPECT_TRUE(algo.driver().clustering().is_flat());
  const auto stats = algo.driver().clustering().stats();
  EXPECT_EQ(stats.clusters, 1u);
  EXPECT_EQ(stats.unclustered_nodes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Cluster1Sweep,
    ::testing::Values(Case{64, 1}, Case{64, 2}, Case{256, 1}, Case{256, 2}, Case{256, 3},
                      Case{1024, 1}, Case{1024, 2}, Case{4096, 1}, Case{4096, 2},
                      Case{16384, 1}, Case{65536, 1}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_s" + std::to_string(info.param.seed);
    });

TEST(Cluster1, RoundComplexityScalesAsLogLog) {
  // Rounds must be bounded by c * log log n with one constant across the
  // whole range - the Theorem 9 shape (a log n-round algorithm would blow
  // through this bound at the top of the range).
  for (std::uint32_t n : {256u, 4096u, 65536u, 262144u}) {
    sim::NetworkOptions o;
    o.n = n;
    o.seed = 42;
    sim::Network net(o);
    sim::Engine engine(net);
    Cluster1 algo(engine);
    const auto report = algo.run(0);
    ASSERT_TRUE(report.all_informed) << "n=" << n;
    EXPECT_LE(report.rounds, 16.0 * loglog2d(n)) << "n=" << n;
  }
}

TEST(Cluster1, PhaseBreakdownCoversAllRounds) {
  sim::NetworkOptions o;
  o.n = 1024;
  o.seed = 5;
  sim::Network net(o);
  sim::Engine engine(net);
  Cluster1 algo(engine);
  const auto report = algo.run(0);
  std::uint64_t sum = 0;
  std::vector<std::string> names;
  for (const auto& p : report.phases) {
    sum += p.rounds;
    names.push_back(p.name);
  }
  EXPECT_EQ(sum, report.rounds);
  EXPECT_EQ(names, (std::vector<std::string>{"grow", "square", "merge_all", "pull", "share"}));
}

TEST(Cluster1, DeterministicInSeed) {
  auto run_once = [] {
    sim::NetworkOptions o;
    o.n = 2048;
    o.seed = 77;
    sim::Network net(o);
    sim::Engine engine(net);
    Cluster1 algo(engine);
    return algo.run(3);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.stats.total.payload_messages, b.stats.total.payload_messages);
  EXPECT_EQ(a.stats.total.bits, b.stats.total.bits);
  EXPECT_EQ(a.informed, b.informed);
}

TEST(Cluster1, ObserverSeesPhases) {
  sim::NetworkOptions o;
  o.n = 1024;
  o.seed = 9;
  sim::Network net(o);
  sim::Engine engine(net);
  std::vector<std::string> seen;
  Cluster1 algo(engine, Cluster1Options{}, cluster::DriverOptions{},
                [&](const PhaseSnapshot& s) { seen.emplace_back(s.phase); });
  (void)algo.run(0);
  EXPECT_FALSE(seen.empty());
  // Snapshots from the recruiting and pull phases must be present.
  EXPECT_NE(std::find(seen.begin(), seen.end(), "grow"), seen.end());
  EXPECT_NE(std::find(seen.begin(), seen.end(), "pull"), seen.end());
}

TEST(Cluster1, InvalidSourceThrows) {
  sim::NetworkOptions o;
  o.n = 64;
  sim::Network net(o);
  sim::Engine engine(net);
  Cluster1 algo(engine);
  EXPECT_THROW((void)algo.run(64), ContractViolation);
}

TEST(Cluster1, AnySourceWorks) {
  for (std::uint32_t source : {0u, 1u, 511u, 1023u}) {
    sim::NetworkOptions o;
    o.n = 1024;
    o.seed = 13;
    sim::Network net(o);
    sim::Engine engine(net);
    Cluster1 algo(engine);
    EXPECT_TRUE(algo.run(source).all_informed) << "source=" << source;
  }
}

}  // namespace
}  // namespace gossip::core
