// Unit tests for messages and the paper's bit accounting (sim/message.hpp).
#include "sim/message.hpp"

#include <gtest/gtest.h>

namespace gossip::sim {
namespace {

TEST(MessageCosts, ForNetworkScalesWithLogN) {
  const auto small = MessageCosts::for_network(256, 256);
  const auto large = MessageCosts::for_network(1 << 20, 256);
  EXPECT_LT(small.id_bits, large.id_bits);
  EXPECT_EQ(small.id_bits, 3 * 8u);   // cubic ID space of a 2^8 network
  EXPECT_EQ(large.id_bits, 3 * 20u);
  EXPECT_EQ(small.count_bits, 9u);
  EXPECT_EQ(large.count_bits, 21u);
}

TEST(MessageCosts, RumorFloorIsLogN) {
  // The paper assumes b = Omega(log n); tiny rumors are charged log n bits.
  const auto c = MessageCosts::for_network(1 << 20, 4);
  EXPECT_EQ(c.rumor_bits, 20u);
  const auto big = MessageCosts::for_network(1 << 20, 4096);
  EXPECT_EQ(big.rumor_bits, 4096u);
}

TEST(Message, EmptyMessage) {
  const Message m = Message::empty();
  EXPECT_TRUE(m.is_empty());
  EXPECT_FALSE(m.has_rumor());
  EXPECT_FALSE(m.has_count());
  EXPECT_TRUE(m.ids().empty());
  EXPECT_TRUE(m.first_id().is_unclustered());
}

TEST(Message, RumorMessage) {
  const Message m = Message::rumor();
  EXPECT_TRUE(m.has_rumor());
  EXPECT_FALSE(m.is_empty());
}

TEST(Message, CountMessage) {
  const Message m = Message::count(42);
  EXPECT_TRUE(m.has_count());
  EXPECT_EQ(m.count_value(), 42u);
  EXPECT_FALSE(m.is_empty());
}

TEST(Message, SingleIdMessage) {
  const Message m = Message::single_id(NodeId(7));
  ASSERT_EQ(m.ids().size(), 1u);
  EXPECT_EQ(m.first_id(), NodeId(7));
}

TEST(Message, IdListMessage) {
  Message::IdList ids;
  for (std::uint64_t i = 0; i < 10; ++i) ids.push_back(NodeId(i));
  const Message m = Message::id_list(std::move(ids));
  EXPECT_EQ(m.ids().size(), 10u);
  EXPECT_EQ(m.first_id(), NodeId(0));
}

TEST(Message, BuilderComposition) {
  const Message m = Message::rumor().and_count(5).and_id(NodeId(9));
  EXPECT_TRUE(m.has_rumor());
  EXPECT_TRUE(m.has_count());
  EXPECT_EQ(m.count_value(), 5u);
  EXPECT_EQ(m.first_id(), NodeId(9));
}

TEST(Message, BitAccounting) {
  MessageCosts c;
  c.id_bits = 30;
  c.count_bits = 11;
  c.rumor_bits = 256;
  EXPECT_EQ(Message::empty().bits(c), 3u);  // header only
  EXPECT_EQ(Message::rumor().bits(c), 3u + 256u);
  EXPECT_EQ(Message::count(1).bits(c), 3u + 11u);
  EXPECT_EQ(Message::single_id(NodeId(1)).bits(c), 3u + 30u);
  EXPECT_EQ(Message::rumor().and_count(1).and_id(NodeId(1)).bits(c),
            3u + 256u + 11u + 30u);
}

TEST(Message, BitAccountingScalesWithIdCount) {
  MessageCosts c;
  c.id_bits = 10;
  Message::IdList ids;
  for (std::uint64_t i = 0; i < 7; ++i) ids.push_back(NodeId(i));
  EXPECT_EQ(Message::id_list(std::move(ids)).bits(c), 3u + 70u);
}

TEST(Message, CopyIsIndependent) {
  Message a = Message::single_id(NodeId(1));
  Message b = a.and_id(NodeId(2));
  EXPECT_EQ(a.ids().size(), 1u);
  EXPECT_EQ(b.ids().size(), 2u);
}

}  // namespace
}  // namespace gossip::sim
