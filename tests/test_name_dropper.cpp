// Tests for the Name-Dropper baseline (baselines/name_dropper.hpp).
#include "baselines/name_dropper.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace gossip::baselines {
namespace {

struct Case {
  std::uint32_t n;
  NameDropperStart start;
  std::uint64_t seed;
};

class NameDropperSweep : public ::testing::TestWithParam<Case> {};

TEST_P(NameDropperSweep, ReachesFullDiscovery) {
  const auto [n, start, seed] = GetParam();
  NameDropperOptions o;
  o.start = start;
  const auto report = run_name_dropper(n, seed, o);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.n, n);
  // Harchol-Balter et al.: O(log^2 n) rounds from any weakly connected start.
  const double bound = 8.0 * ceil_log2(n) * ceil_log2(n) + 50.0;
  EXPECT_LE(static_cast<double>(report.rounds), bound);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NameDropperSweep,
    ::testing::Values(Case{16, NameDropperStart::kRing, 1},
                      Case{64, NameDropperStart::kRing, 1},
                      Case{64, NameDropperStart::kRandomTree, 1},
                      Case{256, NameDropperStart::kRing, 2},
                      Case{256, NameDropperStart::kRandomTree, 2},
                      Case{1024, NameDropperStart::kRing, 1},
                      Case{1024, NameDropperStart::kRandomTree, 1}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) +
             (info.param.start == NameDropperStart::kRing ? "_ring" : "_tree") + "_s" +
             std::to_string(info.param.seed);
    });

TEST(NameDropper, MessageCountMatchesRounds) {
  const auto report = run_name_dropper(128, 3);
  ASSERT_TRUE(report.complete);
  // One forward per node per round.
  EXPECT_EQ(report.messages, report.rounds * 128);
  EXPECT_GE(report.id_transfers, report.messages);  // every message carries >= 1 ID
}

TEST(NameDropper, RoundCapRespected) {
  NameDropperOptions o;
  o.max_rounds = 2;
  const auto report = run_name_dropper(1024, 1, o);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.rounds, 2u);
}

TEST(NameDropper, DeterministicInSeed) {
  const auto a = run_name_dropper(256, 9);
  const auto b = run_name_dropper(256, 9);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.id_transfers, b.id_transfers);
}

TEST(NameDropper, SeedsChangeTrajectory) {
  const auto a = run_name_dropper(256, 1);
  const auto b = run_name_dropper(256, 2);
  EXPECT_TRUE(a.complete);
  EXPECT_TRUE(b.complete);
  EXPECT_NE(a.id_transfers, b.id_transfers);
}

TEST(NameDropper, TinyNetworks) {
  const auto report = run_name_dropper(2, 1);
  EXPECT_TRUE(report.complete);
  EXPECT_THROW((void)run_name_dropper(1, 1), ContractViolation);
}

}  // namespace
}  // namespace gossip::baselines
