// Parity suite: the static-dispatch executor and the legacy std::function
// RoundHooks path must produce bit-identical metrics and knowledge graphs
// for the same seed, across push, pull and exchange rounds (random and
// direct addressing). This is what lets algorithms migrate to static
// dispatch without re-validating a single measurement.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/engine.hpp"

namespace gossip::sim {
namespace {

NetworkOptions opts(std::uint32_t n, std::uint64_t seed) {
  NetworkOptions o;
  o.n = n;
  o.seed = seed;
  o.track_knowledge = true;
  return o;
}

void expect_round_stats_equal(const RoundStats& a, const RoundStats& b,
                              const char* where) {
  EXPECT_EQ(a.pushes, b.pushes) << where;
  EXPECT_EQ(a.pull_requests, b.pull_requests) << where;
  EXPECT_EQ(a.pull_responses, b.pull_responses) << where;
  EXPECT_EQ(a.payload_messages, b.payload_messages) << where;
  EXPECT_EQ(a.connections, b.connections) << where;
  EXPECT_EQ(a.bits, b.bits) << where;
  EXPECT_EQ(a.initiators, b.initiators) << where;
  EXPECT_EQ(a.max_involvement, b.max_involvement) << where;
}

void expect_runs_equal(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  expect_round_stats_equal(a.total, b.total, "totals");
  ASSERT_EQ(a.per_round.size(), b.per_round.size());
  for (std::size_t r = 0; r < a.per_round.size(); ++r) {
    expect_round_stats_equal(a.per_round[r], b.per_round[r], "per-round");
  }
}

void expect_knowledge_equal(const Network& a, const Network& b) {
  ASSERT_NE(a.knowledge(), nullptr);
  ASSERT_NE(b.knowledge(), nullptr);
  EXPECT_EQ(a.knowledge()->total_knowledge(), b.knowledge()->total_knowledge());
  for (std::uint32_t v = 0; v < a.n(); ++v) {
    EXPECT_EQ(a.knowledge()->known_ids(v), b.knowledge()->known_ids(v))
        << "knowledge of node " << v << " diverged";
  }
}

// Workload state shared by both dispatch paths; the per-node decision logic
// lives in plain methods so the exact same computation backs the static
// hooks struct and the RoundHooks lambdas.
struct Workload {
  Network& net;
  std::vector<std::uint32_t> tokens;

  explicit Workload(Network& n) : net(n), tokens(n.n(), 0) { tokens[0] = 1; }

  // A deliberately messy mix: depending on the node's state it pushes
  // (random or direct to a learned ID), pulls, exchanges, or stays silent.
  std::optional<Contact> decide(std::uint32_t v) {
    const std::uint32_t t = tokens[v];
    switch (t % 5) {
      case 0:
        return std::nullopt;
      case 1:
        return Contact::push_random(Message::rumor().and_id(net.id_of(v)));
      case 2:
        return Contact::pull_random();
      case 3:
        return Contact::exchange_random(Message::count(t).and_id(net.id_of(v)));
      default: {
        // Direct pull from a learned ID, if any; the knowledge tracker
        // rejects anything else.
        const auto known = net.knowledge()->known_ids(v);
        if (known.empty()) return Contact::pull_random();
        return Contact::pull_direct(known[t % known.size()]);
      }
    }
  }
  Message answer(std::uint32_t v) const {
    if (tokens[v] == 0) return Message::empty();
    return Message::count(tokens[v]).and_id(net.id_of(v));
  }
  void receive_push(std::uint32_t r, const Message& m) {
    tokens[r] += 1 + static_cast<std::uint32_t>(m.ids().size());
  }
  void receive_reply(std::uint32_t q, const Message& m) {
    if (m.has_count()) tokens[q] += static_cast<std::uint32_t>(m.count_value() % 7);
  }
};

/// Static-dispatch hooks over a Workload.
struct StaticWorkloadHooks {
  Workload& w;
  std::optional<Contact> initiate(std::uint32_t v) { return w.decide(v); }
  Message respond(std::uint32_t v) { return w.answer(v); }
  void on_push(std::uint32_t r, const Message& m) { w.receive_push(r, m); }
  void on_pull_reply(std::uint32_t q, const Message& m) { w.receive_reply(q, m); }
};

/// The same workload behind the type-erased legacy surface.
RoundHooks legacy_workload_hooks(Workload& w) {
  RoundHooks h;
  h.initiate = [&w](std::uint32_t v) { return w.decide(v); };
  h.respond = [&w](std::uint32_t v) { return w.answer(v); };
  h.on_push = [&w](std::uint32_t r, const Message& m) { w.receive_push(r, m); };
  h.on_pull_reply = [&w](std::uint32_t q, const Message& m) { w.receive_reply(q, m); };
  return h;
}

class EngineParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineParity, MixedWorkloadBitIdentical) {
  const std::uint64_t seed = GetParam();
  constexpr std::uint32_t kN = 96;
  constexpr unsigned kRounds = 30;

  Network net_s(opts(kN, seed));
  Engine eng_s(net_s, /*keep_history=*/true);
  Workload w_s(net_s);
  StaticWorkloadHooks hooks_s{w_s};

  Network net_l(opts(kN, seed));
  Engine eng_l(net_l, /*keep_history=*/true);
  Workload w_l(net_l);
  const RoundHooks hooks_l = legacy_workload_hooks(w_l);

  for (unsigned r = 0; r < kRounds; ++r) {
    eng_s.run_round(hooks_s);
    eng_l.run_round(hooks_l);
  }

  expect_runs_equal(eng_s.metrics().run(), eng_l.metrics().run());
  expect_knowledge_equal(net_s, net_l);
  EXPECT_EQ(w_s.tokens, w_l.tokens);
}

// Single-kind rounds: push-only, pull-only, exchange-only.
TEST_P(EngineParity, PushOnlyRounds) {
  const std::uint64_t seed = GetParam();
  constexpr std::uint32_t kN = 64;

  const auto run = [&](auto&& round_fn) {
    Network net(opts(kN, seed));
    Engine eng(net, true);
    std::vector<std::uint32_t> hits(kN, 0);
    for (unsigned r = 0; r < 20; ++r) round_fn(eng, hits);
    return std::tuple<RunStats, std::vector<std::uint32_t>>(eng.metrics().run(), hits);
  };

  auto [stats_s, hits_s] = run([](Engine& eng, std::vector<std::uint32_t>& hits) {
    eng.run_round(make_hooks(
        [](std::uint32_t) -> std::optional<Contact> {
          return Contact::push_random(Message::rumor());
        },
        no_hook,
        [&hits](std::uint32_t r, const Message&) { ++hits[r]; }));
  });
  auto [stats_l, hits_l] = run([](Engine& eng, std::vector<std::uint32_t>& hits) {
    RoundHooks h;
    h.initiate = [](std::uint32_t) -> std::optional<Contact> {
      return Contact::push_random(Message::rumor());
    };
    h.on_push = [&hits](std::uint32_t r, const Message&) { ++hits[r]; };
    eng.run_round(h);
  });
  expect_runs_equal(stats_s, stats_l);
  EXPECT_EQ(hits_s, hits_l);
}

TEST_P(EngineParity, PullOnlyRounds) {
  const std::uint64_t seed = GetParam();
  constexpr std::uint32_t kN = 64;

  const auto run = [&](bool use_static) {
    Network net(opts(kN, seed));
    Engine eng(net, true);
    std::vector<std::uint32_t> replies(kN, 0);
    for (unsigned r = 0; r < 20; ++r) {
      if (use_static) {
        eng.run_round(make_hooks(
            [](std::uint32_t) -> std::optional<Contact> {
              return Contact::pull_random();
            },
            [&net](std::uint32_t v) { return Message::count(v).and_id(net.id_of(v)); },
            no_hook,
            [&replies](std::uint32_t q, const Message& m) {
              replies[q] += static_cast<std::uint32_t>(m.count_value());
            }));
      } else {
        RoundHooks h;
        h.initiate = [](std::uint32_t) -> std::optional<Contact> {
          return Contact::pull_random();
        };
        h.respond = [&net](std::uint32_t v) {
          return Message::count(v).and_id(net.id_of(v));
        };
        h.on_pull_reply = [&replies](std::uint32_t q, const Message& m) {
          replies[q] += static_cast<std::uint32_t>(m.count_value());
        };
        eng.run_round(h);
      }
    }
    return std::tuple<RunStats, std::vector<std::uint32_t>, std::uint64_t>(
        eng.metrics().run(), replies, net.knowledge()->total_knowledge());
  };

  auto [stats_s, replies_s, know_s] = run(true);
  auto [stats_l, replies_l, know_l] = run(false);
  expect_runs_equal(stats_s, stats_l);
  EXPECT_EQ(replies_s, replies_l);
  EXPECT_EQ(know_s, know_l);
}

TEST_P(EngineParity, ExchangeOnlyRounds) {
  const std::uint64_t seed = GetParam();
  constexpr std::uint32_t kN = 64;

  const auto run = [&](bool use_static) {
    Network net(opts(kN, seed));
    Engine eng(net, true);
    std::vector<std::uint64_t> sum(kN, 0);
    const auto bump = [&sum](std::uint32_t v, const Message& m) {
      sum[v] += m.has_count() ? m.count_value() : 1;
    };
    for (unsigned r = 0; r < 20; ++r) {
      if (use_static) {
        eng.run_round(make_hooks(
            [](std::uint32_t v) -> std::optional<Contact> {
              return Contact::exchange_random(Message::count(v + 1));
            },
            [](std::uint32_t v) { return Message::count(100 + v); }, bump, bump));
      } else {
        RoundHooks h;
        h.initiate = [](std::uint32_t v) -> std::optional<Contact> {
          return Contact::exchange_random(Message::count(v + 1));
        };
        h.respond = [](std::uint32_t v) { return Message::count(100 + v); };
        h.on_push = bump;
        h.on_pull_reply = bump;
        eng.run_round(h);
      }
    }
    return std::tuple<RunStats, std::vector<std::uint64_t>, std::uint64_t>(
        eng.metrics().run(), sum, net.knowledge()->total_knowledge());
  };

  auto [stats_s, sum_s, know_s] = run(true);
  auto [stats_l, sum_l, know_l] = run(false);
  expect_runs_equal(stats_s, stats_l);
  EXPECT_EQ(sum_s, sum_l);
  EXPECT_EQ(know_s, know_l);
}

// Failures: contacts to failed nodes must be lost identically on both paths.
TEST_P(EngineParity, WithFailedNodes) {
  const std::uint64_t seed = GetParam();
  constexpr std::uint32_t kN = 96;

  const auto run = [&](bool use_static) {
    Network net(opts(kN, seed));
    for (std::uint32_t v = 3; v < kN; v += 7) net.fail(v);
    Engine eng(net, true);
    Workload w(net);
    if (use_static) {
      StaticWorkloadHooks hooks{w};
      for (unsigned r = 0; r < 25; ++r) eng.run_round(hooks);
    } else {
      const RoundHooks hooks = legacy_workload_hooks(w);
      for (unsigned r = 0; r < 25; ++r) eng.run_round(hooks);
    }
    return std::tuple<RunStats, std::vector<std::uint32_t>, std::uint64_t>(
        eng.metrics().run(), w.tokens, net.knowledge()->total_knowledge());
  };

  auto [stats_s, tokens_s, know_s] = run(true);
  auto [stats_l, tokens_l, know_l] = run(false);
  expect_runs_equal(stats_s, stats_l);
  EXPECT_EQ(tokens_s, tokens_l);
  EXPECT_EQ(know_s, know_l);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineParity, ::testing::Values(1u, 7u, 1234u));

// The initiator-subset overload must behave identically across paths too.
TEST(EngineParitySubset, SubsetRounds) {
  constexpr std::uint32_t kN = 64;
  const std::vector<std::uint32_t> subset{0, 5, 9, 13, 40, 63};

  const auto run = [&](bool use_static) {
    Network net(opts(kN, 3));
    Engine eng(net, true);
    std::vector<std::uint32_t> hits(kN, 0);
    for (unsigned r = 0; r < 10; ++r) {
      if (use_static) {
        eng.run_round(make_hooks(
                          [](std::uint32_t v) -> std::optional<Contact> {
                            return Contact::push_random(Message::count(v));
                          },
                          no_hook,
                          [&hits](std::uint32_t t, const Message&) { ++hits[t]; }),
                      subset);
      } else {
        RoundHooks h;
        h.initiate = [](std::uint32_t v) -> std::optional<Contact> {
          return Contact::push_random(Message::count(v));
        };
        h.on_push = [&hits](std::uint32_t t, const Message&) { ++hits[t]; };
        eng.run_round(h, subset);
      }
    }
    return std::tuple<RunStats, std::vector<std::uint32_t>>(eng.metrics().run(), hits);
  };

  auto [stats_s, hits_s] = run(true);
  auto [stats_l, hits_l] = run(false);
  EXPECT_EQ(stats_s.total.pushes, stats_l.total.pushes);
  EXPECT_EQ(stats_s.total.initiators, stats_l.total.initiators);
  EXPECT_EQ(hits_s, hits_l);
}

}  // namespace
}  // namespace gossip::sim
