// Tests for the Karp et al. counter baseline (baselines/rrs.hpp).
#include "baselines/rrs.hpp"

#include <gtest/gtest.h>

#include "common/math.hpp"

namespace gossip::baselines {
namespace {

sim::NetworkOptions opts(std::uint32_t n, std::uint64_t seed = 1) {
  sim::NetworkOptions o;
  o.n = n;
  o.seed = seed;
  return o;
}

struct Case {
  std::uint32_t n;
  std::uint64_t seed;
};

class RrsSweep : public ::testing::TestWithParam<Case> {};

TEST_P(RrsSweep, InformsEveryone) {
  const auto [n, seed] = GetParam();
  sim::Network net(opts(n, seed));
  const auto report = run_rrs(net, 0);
  EXPECT_TRUE(report.all_informed) << report.informed << "/" << report.alive;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RrsSweep,
                         ::testing::Values(Case{64, 1}, Case{256, 1}, Case{1024, 1},
                                           Case{1024, 2}, Case{4096, 1}, Case{16384, 1},
                                           Case{65536, 1}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "_s" +
                                  std::to_string(info.param.seed);
                         });

TEST(Rrs, RoundsAreThetaLogN) {
  sim::Network net(opts(65536, 3));
  const auto report = run_rrs(net, 0);
  ASSERT_TRUE(report.all_informed);
  EXPECT_GE(static_cast<double>(report.rounds), log2d(65536) / 2.0);
  EXPECT_LE(static_cast<double>(report.rounds), 6.0 * log2d(65536));
}

TEST(Rrs, TransmissionsPerNodeGrowSlowly) {
  // [10]: O(log log n) rumor transmissions per node - the counter makes
  // informed nodes stop quickly, unlike plain PUSH.
  double prev = 0;
  for (std::uint32_t n : {1024u, 16384u, 262144u}) {
    sim::Network net(opts(n, 5));
    const auto report = run_rrs(net, 0);
    ASSERT_TRUE(report.all_informed) << "n=" << n;
    EXPECT_LT(report.payload_messages_per_node(), 4.0 * loglog2d(n) + 8.0) << "n=" << n;
    prev = report.payload_messages_per_node();
  }
  (void)prev;
}

TEST(Rrs, CheaperThanPlainPushAtScale) {
  sim::Network a(opts(262144, 7));
  const auto rrs = run_rrs(a, 0);
  ASSERT_TRUE(rrs.all_informed);
  // Plain PUSH at this size costs ~log n ~ 18+ payload messages per node;
  // the counter algorithm must undercut it clearly.
  EXPECT_LT(rrs.payload_messages_per_node(), 12.0);
}

TEST(Rrs, CustomCounterCapRespected) {
  sim::Network net(opts(4096, 9));
  RrsOptions o;
  o.ctr_max = 1;  // nodes stop almost immediately: spreading slows but pulls finish it
  const auto report = run_rrs(net, 0, o);
  // With an aggressive cap the uninformed nodes' own calls (pull half of the
  // exchange) still complete the broadcast within the round cap.
  EXPECT_TRUE(report.all_informed);
}

TEST(Rrs, RoundCap) {
  sim::Network net(opts(4096, 11));
  RrsOptions o;
  o.max_rounds = 2;
  const auto report = run_rrs(net, 0, o);
  EXPECT_FALSE(report.all_informed);
  EXPECT_EQ(report.rounds, 2u);
}

TEST(Rrs, DeterministicInSeed) {
  sim::Network a(opts(4096, 13)), b(opts(4096, 13));
  const auto ra = run_rrs(a, 0);
  const auto rb = run_rrs(b, 0);
  EXPECT_EQ(ra.rounds, rb.rounds);
  EXPECT_EQ(ra.stats.total.payload_messages, rb.stats.total.payload_messages);
}

}  // namespace
}  // namespace gossip::baselines
