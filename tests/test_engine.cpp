// Unit tests for the round engine (sim/engine.hpp): delivery semantics,
// address-obliviousness enforcement, direct-addressing honesty, failure
// behaviour and metering integration.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/assert.hpp"

namespace gossip::sim {
namespace {

NetworkOptions opts(std::uint32_t n, bool knowledge = false, std::uint64_t seed = 1) {
  NetworkOptions o;
  o.n = n;
  o.seed = seed;
  o.track_knowledge = knowledge;
  return o;
}

TEST(Engine, PushDelivery) {
  Network net(opts(4));
  Engine eng(net);
  std::vector<int> got(4, 0);
  RoundHooks hooks;
  hooks.initiate = [&](std::uint32_t v) -> std::optional<Contact> {
    if (v != 0) return std::nullopt;
    return Contact::push_direct(net.id_of(2), Message::count(77));
  };
  hooks.on_push = [&](std::uint32_t r, const Message& m) {
    got[r] = static_cast<int>(m.count_value());
  };
  // Direct addressing without knowledge tracking is allowed (tracking off).
  eng.run_round(hooks);
  EXPECT_EQ(got[2], 77);
  EXPECT_EQ(got[0], 0);
  EXPECT_EQ(eng.rounds(), 1u);
}

TEST(Engine, PullRequestAndReply) {
  Network net(opts(4));
  Engine eng(net);
  int replies = 0;
  RoundHooks hooks;
  hooks.initiate = [&](std::uint32_t v) -> std::optional<Contact> {
    if (v == 0) return Contact::pull_direct(net.id_of(1));
    return std::nullopt;
  };
  hooks.respond = [&](std::uint32_t v) { return Message::count(v + 100); };
  hooks.on_pull_reply = [&](std::uint32_t q, const Message& m) {
    EXPECT_EQ(q, 0u);
    EXPECT_EQ(m.count_value(), 101u);
    ++replies;
  };
  eng.run_round(hooks);
  EXPECT_EQ(replies, 1);
}

TEST(Engine, AddressObliviousSingleResponsePerRound) {
  // Three nodes pull node 3; respond() must run exactly once and all three
  // must receive the identical message.
  Network net(opts(5));
  Engine eng(net);
  int respond_calls = 0;
  std::vector<std::uint64_t> received;
  RoundHooks hooks;
  hooks.initiate = [&](std::uint32_t v) -> std::optional<Contact> {
    if (v < 3) return Contact::pull_direct(net.id_of(3));
    return std::nullopt;
  };
  hooks.respond = [&](std::uint32_t v) {
    EXPECT_EQ(v, 3u);
    ++respond_calls;
    return Message::count(42);
  };
  hooks.on_pull_reply = [&](std::uint32_t, const Message& m) {
    received.push_back(m.count_value());
  };
  eng.run_round(hooks);
  EXPECT_EQ(respond_calls, 1);
  ASSERT_EQ(received.size(), 3u);
  for (auto v : received) EXPECT_EQ(v, 42u);
}

TEST(Engine, ExchangeDeliversBothWays) {
  Network net(opts(4));
  Engine eng(net);
  std::uint64_t pushed_to = 99, reply_to = 99;
  RoundHooks hooks;
  hooks.initiate = [&](std::uint32_t v) -> std::optional<Contact> {
    if (v == 0) return Contact::exchange_direct(net.id_of(1), Message::count(5));
    return std::nullopt;
  };
  hooks.respond = [&](std::uint32_t) { return Message::count(6); };
  hooks.on_push = [&](std::uint32_t r, const Message& m) {
    pushed_to = r;
    EXPECT_EQ(m.count_value(), 5u);
  };
  hooks.on_pull_reply = [&](std::uint32_t q, const Message& m) {
    reply_to = q;
    EXPECT_EQ(m.count_value(), 6u);
  };
  eng.run_round(hooks);
  EXPECT_EQ(pushed_to, 1u);
  EXPECT_EQ(reply_to, 0u);
}

TEST(Engine, RandomTargetNeverSelf) {
  Network net(opts(2));  // only one possible partner
  Engine eng(net);
  RoundHooks hooks;
  std::vector<int> hits(2, 0);
  hooks.initiate = [&](std::uint32_t) -> std::optional<Contact> {
    return Contact::push_random(Message::count(1));
  };
  hooks.on_push = [&](std::uint32_t r, const Message&) { ++hits[r]; };
  for (int i = 0; i < 50; ++i) eng.run_round(hooks);
  // With n=2 every push must land on the other node: both get exactly 50.
  EXPECT_EQ(hits[0], 50);
  EXPECT_EQ(hits[1], 50);
}

TEST(Engine, RandomTargetsRoughlyUniform) {
  Network net(opts(8));
  Engine eng(net);
  std::vector<int> hits(8, 0);
  RoundHooks hooks;
  hooks.initiate = [&](std::uint32_t v) -> std::optional<Contact> {
    if (v != 0) return std::nullopt;
    return Contact::push_random(Message::count(1));
  };
  hooks.on_push = [&](std::uint32_t r, const Message&) { ++hits[r]; };
  for (int i = 0; i < 7000; ++i) eng.run_round(hooks);
  EXPECT_EQ(hits[0], 0);  // never self
  for (std::uint32_t v = 1; v < 8; ++v) {
    EXPECT_GT(hits[v], 700);
    EXPECT_LT(hits[v], 1300);
  }
}

TEST(Engine, DirectContactToUnknownIdRejectedWithKnowledge) {
  Network net(opts(4, /*knowledge=*/true));
  Engine eng(net);
  RoundHooks hooks;
  hooks.initiate = [&](std::uint32_t v) -> std::optional<Contact> {
    if (v == 0) return Contact::push_direct(net.id_of(2), Message::count(1));
    return std::nullopt;
  };
  EXPECT_THROW(eng.run_round(hooks), ContractViolation);
}

TEST(Engine, DirectContactAllowedAfterLearning) {
  Network net(opts(4, /*knowledge=*/true));
  Engine eng(net);
  // A random push teaches both endpoints each other's IDs (the
  // unknown-target rejection itself is covered by
  // DirectContactToUnknownIdRejectedWithKnowledge; a rejected round poisons
  // the engine, so this test only exercises the legal flow).
  RoundHooks random_push;
  random_push.initiate = [&](std::uint32_t v) -> std::optional<Contact> {
    if (v == 2) return Contact::push_random(Message::single_id(net.id_of(2)));
    return std::nullopt;
  };
  std::uint32_t receiver = 0;
  random_push.on_push = [&](std::uint32_t r, const Message&) { receiver = r; };
  eng.run_round(random_push);
  // Now the receiver knows node 2's ID and may direct-address it.
  RoundHooks direct;
  direct.initiate = [&](std::uint32_t v) -> std::optional<Contact> {
    if (v == receiver) return Contact::pull_direct(net.id_of(2));
    return std::nullopt;
  };
  int replies = 0;
  direct.respond = [](std::uint32_t) { return Message::count(1); };
  direct.on_pull_reply = [&](std::uint32_t, const Message&) { ++replies; };
  EXPECT_NO_THROW(eng.run_round(direct));
  EXPECT_EQ(replies, 1);
}

TEST(Engine, MessageIdsExtendKnowledge) {
  Network net(opts(4, /*knowledge=*/true));
  Engine eng(net);
  // Node 1 learns node 3's ID because a received message carried it.
  RoundHooks hooks;
  hooks.initiate = [&](std::uint32_t v) -> std::optional<Contact> {
    if (v == 0) return Contact::push_random(Message::single_id(net.id_of(3)));
    return std::nullopt;
  };
  std::uint32_t receiver = 99;
  hooks.on_push = [&](std::uint32_t r, const Message&) { receiver = r; };
  eng.run_round(hooks);
  ASSERT_NE(receiver, 99u);
  EXPECT_TRUE(net.knowledge()->knows(receiver, net.id_of(3), net.id_of(receiver)));
  // And the phone call itself revealed the caller's ID.
  EXPECT_TRUE(net.knowledge()->knows(receiver, net.id_of(0), net.id_of(receiver)));
  EXPECT_TRUE(net.knowledge()->knows(0, net.id_of(receiver), net.id_of(0)));
}

TEST(Engine, ContactsToFailedNodesAreLost) {
  Network net(opts(4));
  net.fail(1);
  Engine eng(net);
  int deliveries = 0, replies = 0;
  RoundHooks hooks;
  hooks.initiate = [&](std::uint32_t v) -> std::optional<Contact> {
    if (v == 0) return Contact::push_direct(net.id_of(1), Message::count(1));
    if (v == 2) return Contact::pull_direct(net.id_of(1));
    return std::nullopt;
  };
  hooks.respond = [](std::uint32_t) { return Message::count(9); };
  hooks.on_push = [&](std::uint32_t, const Message&) { ++deliveries; };
  hooks.on_pull_reply = [&](std::uint32_t, const Message&) { ++replies; };
  eng.run_round(hooks);
  EXPECT_EQ(deliveries, 0);
  EXPECT_EQ(replies, 0);
  // The attempts still count as connections (the caller cannot know).
  EXPECT_EQ(eng.metrics().run().total.connections, 2u);
}

TEST(Engine, FailedNodesDoNotInitiate) {
  Network net(opts(4));
  net.fail(0);
  Engine eng(net);
  int initiated = 0;
  RoundHooks hooks;
  hooks.initiate = [&](std::uint32_t) -> std::optional<Contact> {
    ++initiated;
    return std::nullopt;
  };
  eng.run_round(hooks);
  EXPECT_EQ(initiated, 3);  // nodes 1..3 only
}

TEST(Engine, InitiatorSubsetRestrictsWhoActs) {
  Network net(opts(8));
  Engine eng(net);
  std::vector<std::uint32_t> asked;
  RoundHooks hooks;
  hooks.initiate = [&](std::uint32_t v) -> std::optional<Contact> {
    asked.push_back(v);
    return std::nullopt;
  };
  const std::vector<std::uint32_t> subset{1, 5, 6};
  eng.run_round(hooks, subset);
  EXPECT_EQ(asked, subset);
}

TEST(Engine, OutOfRangeInitiatorRejected) {
  // Caller-supplied initiator subsets are bounds-checked even on the
  // no-failures fast path that skips per-node aliveness probes.
  Network net(opts(4));
  Engine eng(net);
  RoundHooks hooks;
  hooks.initiate = [](std::uint32_t) -> std::optional<Contact> {
    return Contact::push_random(Message::rumor());
  };
  const std::vector<std::uint32_t> subset{1, 4};  // 4 is out of range
  EXPECT_THROW(eng.run_round(hooks, subset), ContractViolation);
}

TEST(Engine, SelfContactRejected) {
  Network net(opts(4));
  Engine eng(net);
  RoundHooks hooks;
  hooks.initiate = [&](std::uint32_t v) -> std::optional<Contact> {
    if (v == 2) return Contact::push_direct(net.id_of(2), Message::count(1));
    return std::nullopt;
  };
  EXPECT_THROW(eng.run_round(hooks), ContractViolation);
}

TEST(Engine, MissingInitiateHookThrows) {
  Network net(opts(4));
  Engine eng(net);
  RoundHooks hooks;  // no initiate
  EXPECT_THROW(eng.run_round(hooks), ContractViolation);
}

TEST(Engine, LargeIdListPushDeliveredIntact) {
  // > 15 IDs exceeds the engine's inline pending-push encoding and takes
  // the spill path (paper footnote 2 payloads); the receiver must see the
  // full list and learn every carried ID.
  Network net(opts(4, /*knowledge=*/true));
  Engine eng(net);
  Message::IdList ids;
  for (std::uint64_t i = 0; i < 20; ++i) ids.push_back(NodeId(0x1000 + i));
  RoundHooks hooks;
  hooks.initiate = [&](std::uint32_t v) -> std::optional<Contact> {
    if (v != 0) return std::nullopt;
    return Contact::push_random(Message::id_list(ids).and_count(77));
  };
  std::uint32_t receiver = 99;
  std::size_t got_ids = 0;
  std::uint64_t got_count = 0;
  hooks.on_push = [&](std::uint32_t r, const Message& m) {
    receiver = r;
    got_ids = m.ids().size();
    got_count = m.count_value();
  };
  eng.run_round(hooks);
  ASSERT_NE(receiver, 99u);
  EXPECT_EQ(got_ids, 20u);
  EXPECT_EQ(got_count, 77u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(net.knowledge()->knows(receiver, NodeId(0x1000 + i), net.id_of(receiver)));
  }
}

TEST(Engine, MeteringIntegration) {
  Network net(opts(4));
  Engine eng(net);
  RoundHooks hooks;
  hooks.initiate = [&](std::uint32_t v) -> std::optional<Contact> {
    if (v == 0) return Contact::push_direct(net.id_of(1), Message::rumor());
    if (v == 2) return Contact::pull_direct(net.id_of(1));
    return std::nullopt;
  };
  hooks.respond = [](std::uint32_t) { return Message::empty(); };
  eng.run_round(hooks);
  const auto& t = eng.metrics().run().total;
  EXPECT_EQ(t.pushes, 1u);
  EXPECT_EQ(t.pull_requests, 1u);
  EXPECT_EQ(t.payload_messages, 1u);  // rumor push; the empty reply is free
  EXPECT_EQ(t.connections, 2u);
  EXPECT_EQ(t.initiators, 2u);
  // Node 1 was involved in both communications.
  EXPECT_EQ(t.max_involvement, 2u);
}

}  // namespace
}  // namespace gossip::sim
